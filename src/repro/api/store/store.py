"""Content-addressed artifact store: every run record filed under its spec hash.

Layout on disk::

    <root>/
      index.json             # human-readable: ref -> name/kind/when/headline
      records/<sha256>.json  # one full-fidelity RunArtifact record each
                             # (.json.gz in compressed stores; reads accept
                             # either, so mixed stores stay readable)

A record's key is :func:`~repro.api.store.canonical.content_hash` of its
resolved spec, so recording the same scenario twice *updates* one entry
(latest run wins — the store answers "what do the numbers for scenario X
look like now?"), while any spec change, however small, creates a new
identity.  Records are pure :meth:`RunArtifact.to_record` output — store
metadata lives only in the index — so ``from_record(get_record(ref))``
reconstructs an object equal to what ``put`` received.

Refs accepted anywhere a ref is taken: the full hash, any unambiguous
prefix, or a scenario name (resolving to its most recent record).
"""

from __future__ import annotations

import gzip
import json
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

from .canonical import content_hash, short_ref

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..runner import RunArtifact

__all__ = ["ArtifactStore", "as_store", "DEFAULT_STORE_PATH"]

#: Where the CLI's record/replay/diff commands look when ``--store`` is omitted.
DEFAULT_STORE_PATH = "tdpipe-store"

#: Bump on any backward-incompatible change to the on-disk store layout.
STORE_VERSION = 1

_INDEX = "index.json"
_RECORDS = "records"


class ArtifactStore:
    """A directory of content-addressed run records plus a readable index.

    Compaction knobs for stores that hold hundreds of runs (parallel
    sweeps): ``compress`` gzips new records (``records/<sha>.json.gz``,
    deterministic bytes via ``mtime=0``), ``lean`` drops the full-fidelity
    ``detail`` payload and keeps only spec + flat metrics.  Reads are always
    transparent across plain/gzip records; lean records replay and diff
    normally but cannot be reconstructed into live artifacts.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        compress: bool = False,
        lean: bool = False,
    ) -> None:
        self.root = Path(root)
        self.compress = compress
        self.lean = lean
        #: Refs written by *this* process, in put() order (what a CLI
        #: invocation just produced, vs. whatever the directory already held).
        self.session_refs: list[str] = []

    # -- paths ---------------------------------------------------------- #
    @property
    def records_dir(self) -> Path:
        return self.root / _RECORDS

    @property
    def index_path(self) -> Path:
        return self.root / _INDEX

    def _record_path(self, ref: str) -> Path:
        return self.records_dir / f"{ref}.json"

    def _gz_record_path(self, ref: str) -> Path:
        return self.records_dir / f"{ref}.json.gz"

    # -- index ---------------------------------------------------------- #
    def _load_index(self) -> dict[str, Any]:
        if not self.index_path.exists():
            return {"store_version": STORE_VERSION, "next_seq": 0, "entries": {}}
        with open(self.index_path) as fh:
            index = json.load(fh)
        version = index.get("store_version")
        if version != STORE_VERSION:
            raise ValueError(
                f"store at {self.root} has layout version {version}; "
                f"this build speaks version {STORE_VERSION}"
            )
        return index

    def _save_index(self, index: dict[str, Any]) -> None:
        tmp = self.index_path.with_suffix(".json.tmp")
        with open(tmp, "w") as fh:
            json.dump(index, fh, indent=2, sort_keys=False, allow_nan=False)
            fh.write("\n")
        os.replace(tmp, self.index_path)

    # -- write ---------------------------------------------------------- #
    def put(self, artifact: "RunArtifact", *, allow_opaque: bool = False) -> str:
        """File one artifact under its spec hash; return the full ref.

        Artifacts carrying :attr:`RunArtifact.opaque_overrides` are rejected
        by default: their embedded spec alone cannot reproduce the run, so a
        later ``replay`` would silently compare against a different scenario.
        """
        if artifact.opaque_overrides and not allow_opaque:
            raise ValueError(
                "artifact carries opaque overrides "
                f"{list(artifact.opaque_overrides)} and is not replayable from "
                "its spec; pass allow_opaque=True to store it anyway"
            )
        ref = content_hash(artifact.spec)
        record = artifact.to_record(detail=not self.lean)
        self.records_dir.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(record, allow_nan=False) + "\n"
        record_path = (
            self._gz_record_path(ref) if self.compress else self._record_path(ref)
        )
        tmp = record_path.with_name(record_path.name + ".tmp")
        if self.compress:
            # mtime=0 keeps the gzip bytes a pure function of the record, so
            # serial and parallel sweeps produce byte-identical stores.
            tmp.write_bytes(gzip.compress(payload.encode("utf-8"), mtime=0))
        else:
            tmp.write_text(payload)
        os.replace(tmp, record_path)
        # Re-recording a spec with the other compression setting must not
        # leave a stale sibling behind (reads prefer the plain file).
        stale = self._record_path(ref) if self.compress else self._gz_record_path(ref)
        if stale.exists():
            stale.unlink()

        index = self._load_index()
        entry: dict[str, Any] = {
            "seq": index["next_seq"],
            "name": artifact.spec.name or "scenario",
            "kind": artifact.kind,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "describe": artifact.spec.describe(),
            "file": f"{_RECORDS}/{record_path.name}",
            "throughput_tps": record.get("throughput_tps"),
        }
        if self.lean:
            entry["lean"] = True
        if artifact.overrides:
            entry["overrides"] = dict(artifact.overrides)
        index["next_seq"] += 1
        index["entries"][ref] = entry
        self._save_index(index)
        self.session_refs.append(ref)
        return ref

    # -- read ----------------------------------------------------------- #
    def refs(self) -> list[str]:
        """All stored refs, oldest first (by last-written sequence)."""
        entries = self._load_index()["entries"]
        return sorted(entries, key=lambda ref: entries[ref]["seq"])

    def entries(self) -> list[tuple[str, dict[str, Any]]]:
        """(ref, index entry) pairs, oldest first."""
        entries = self._load_index()["entries"]
        return sorted(entries.items(), key=lambda kv: kv[1]["seq"])

    def __len__(self) -> int:
        return len(self._load_index()["entries"])

    def __contains__(self, ref: object) -> bool:
        return isinstance(ref, str) and ref in self._load_index()["entries"]

    def resolve(self, token: str) -> str:
        """Resolve a full hash, unambiguous prefix, or scenario name."""
        entries = self._load_index()["entries"]
        if token in entries:
            return token
        prefix_hits = [ref for ref in entries if ref.startswith(token)]
        if len(prefix_hits) == 1:
            return prefix_hits[0]
        if len(prefix_hits) > 1:
            raise KeyError(
                f"ref prefix {token!r} is ambiguous: "
                f"{sorted(short_ref(r) for r in prefix_hits)}"
            )
        name_hits = [
            (entry["seq"], ref)
            for ref, entry in entries.items()
            if entry["name"] == token
        ]
        if name_hits:
            return max(name_hits)[1]  # most recent record under that name
        raise KeyError(
            f"no record matches {token!r} in store {self.root} "
            f"({len(entries)} records)"
        )

    def get_record(self, ref: str) -> dict[str, Any]:
        """The raw record dict for a ref (full hash / prefix / name).

        Reads are transparent across plain and gzip records regardless of
        this store's ``compress`` setting.  The file named by the index
        entry wins when both compression variants exist (e.g. a ``put``
        interrupted between writing the new variant and unlinking the old
        one): the index is only updated after a record write completes, so
        it always names the last *completed* put.
        """
        full = self.resolve(ref)
        entry = self._load_index()["entries"].get(full, {})
        candidates = []
        if entry.get("file"):
            candidates.append(self.root / entry["file"])
        candidates += [self._record_path(full), self._gz_record_path(full)]
        for path in candidates:
            if path.exists():
                if path.suffix == ".gz":
                    with gzip.open(path, "rt") as fh:
                        return json.load(fh)
                with open(path) as fh:
                    return json.load(fh)
        raise FileNotFoundError(
            f"store {self.root} has no record file for ref {short_ref(full)}"
        )

    def get(self, ref: str) -> "RunArtifact":
        """Reconstruct the stored :class:`RunArtifact` for a ref."""
        from ..runner import RunArtifact

        record = self.get_record(ref)
        if "detail" not in record:
            raise ValueError(
                f"record {short_ref(self.resolve(ref))} is lean (no detail "
                "payload); it supports replay/diff but cannot be "
                "reconstructed into a RunArtifact"
            )
        return RunArtifact.from_record(record)

    def put_all(self, artifacts: Iterable["RunArtifact"], **kwargs: Any) -> list[str]:
        """File several artifacts; return their refs in order."""
        return [self.put(a, **kwargs) for a in artifacts]


def as_store(store: "ArtifactStore | str | os.PathLike") -> ArtifactStore:
    """Coerce a path into an :class:`ArtifactStore` (instances pass through)."""
    if isinstance(store, ArtifactStore):
        return store
    return ArtifactStore(store)
