"""Content-addressed artifact store: every run record filed under its spec hash.

Layout on disk::

    <root>/
      index.json             # human-readable: ref -> name/kind/when/headline
      records/<sha256>.json  # one full-fidelity RunArtifact record each

A record's key is :func:`~repro.api.store.canonical.content_hash` of its
resolved spec, so recording the same scenario twice *updates* one entry
(latest run wins — the store answers "what do the numbers for scenario X
look like now?"), while any spec change, however small, creates a new
identity.  Records are pure :meth:`RunArtifact.to_record` output — store
metadata lives only in the index — so ``from_record(get_record(ref))``
reconstructs an object equal to what ``put`` received.

Refs accepted anywhere a ref is taken: the full hash, any unambiguous
prefix, or a scenario name (resolving to its most recent record).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

from .canonical import content_hash, short_ref

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..runner import RunArtifact

__all__ = ["ArtifactStore", "as_store", "DEFAULT_STORE_PATH"]

#: Where the CLI's record/replay/diff commands look when ``--store`` is omitted.
DEFAULT_STORE_PATH = "tdpipe-store"

#: Bump on any backward-incompatible change to the on-disk store layout.
STORE_VERSION = 1

_INDEX = "index.json"
_RECORDS = "records"


class ArtifactStore:
    """A directory of content-addressed run records plus a readable index."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        #: Refs written by *this* process, in put() order (what a CLI
        #: invocation just produced, vs. whatever the directory already held).
        self.session_refs: list[str] = []

    # -- paths ---------------------------------------------------------- #
    @property
    def records_dir(self) -> Path:
        return self.root / _RECORDS

    @property
    def index_path(self) -> Path:
        return self.root / _INDEX

    def _record_path(self, ref: str) -> Path:
        return self.records_dir / f"{ref}.json"

    # -- index ---------------------------------------------------------- #
    def _load_index(self) -> dict[str, Any]:
        if not self.index_path.exists():
            return {"store_version": STORE_VERSION, "next_seq": 0, "entries": {}}
        with open(self.index_path) as fh:
            index = json.load(fh)
        version = index.get("store_version")
        if version != STORE_VERSION:
            raise ValueError(
                f"store at {self.root} has layout version {version}; "
                f"this build speaks version {STORE_VERSION}"
            )
        return index

    def _save_index(self, index: dict[str, Any]) -> None:
        tmp = self.index_path.with_suffix(".json.tmp")
        with open(tmp, "w") as fh:
            json.dump(index, fh, indent=2, sort_keys=False, allow_nan=False)
            fh.write("\n")
        os.replace(tmp, self.index_path)

    # -- write ---------------------------------------------------------- #
    def put(self, artifact: "RunArtifact", *, allow_opaque: bool = False) -> str:
        """File one artifact under its spec hash; return the full ref.

        Artifacts carrying :attr:`RunArtifact.opaque_overrides` are rejected
        by default: their embedded spec alone cannot reproduce the run, so a
        later ``replay`` would silently compare against a different scenario.
        """
        if artifact.opaque_overrides and not allow_opaque:
            raise ValueError(
                "artifact carries opaque overrides "
                f"{list(artifact.opaque_overrides)} and is not replayable from "
                "its spec; pass allow_opaque=True to store it anyway"
            )
        ref = content_hash(artifact.spec)
        record = artifact.to_record()
        self.records_dir.mkdir(parents=True, exist_ok=True)
        record_path = self._record_path(ref)
        tmp = record_path.with_suffix(".json.tmp")
        with open(tmp, "w") as fh:
            json.dump(record, fh, allow_nan=False)
            fh.write("\n")
        os.replace(tmp, record_path)

        index = self._load_index()
        entry: dict[str, Any] = {
            "seq": index["next_seq"],
            "name": artifact.spec.name or "scenario",
            "kind": artifact.kind,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "describe": artifact.spec.describe(),
            "file": f"{_RECORDS}/{ref}.json",
            "throughput_tps": record.get("throughput_tps"),
        }
        if artifact.overrides:
            entry["overrides"] = dict(artifact.overrides)
        index["next_seq"] += 1
        index["entries"][ref] = entry
        self._save_index(index)
        self.session_refs.append(ref)
        return ref

    # -- read ----------------------------------------------------------- #
    def refs(self) -> list[str]:
        """All stored refs, oldest first (by last-written sequence)."""
        entries = self._load_index()["entries"]
        return sorted(entries, key=lambda ref: entries[ref]["seq"])

    def entries(self) -> list[tuple[str, dict[str, Any]]]:
        """(ref, index entry) pairs, oldest first."""
        entries = self._load_index()["entries"]
        return sorted(entries.items(), key=lambda kv: kv[1]["seq"])

    def __len__(self) -> int:
        return len(self._load_index()["entries"])

    def __contains__(self, ref: object) -> bool:
        return isinstance(ref, str) and ref in self._load_index()["entries"]

    def resolve(self, token: str) -> str:
        """Resolve a full hash, unambiguous prefix, or scenario name."""
        entries = self._load_index()["entries"]
        if token in entries:
            return token
        prefix_hits = [ref for ref in entries if ref.startswith(token)]
        if len(prefix_hits) == 1:
            return prefix_hits[0]
        if len(prefix_hits) > 1:
            raise KeyError(
                f"ref prefix {token!r} is ambiguous: "
                f"{sorted(short_ref(r) for r in prefix_hits)}"
            )
        name_hits = [
            (entry["seq"], ref)
            for ref, entry in entries.items()
            if entry["name"] == token
        ]
        if name_hits:
            return max(name_hits)[1]  # most recent record under that name
        raise KeyError(
            f"no record matches {token!r} in store {self.root} "
            f"({len(entries)} records)"
        )

    def get_record(self, ref: str) -> dict[str, Any]:
        """The raw record dict for a ref (full hash / prefix / name)."""
        full = self.resolve(ref)
        with open(self._record_path(full)) as fh:
            return json.load(fh)

    def get(self, ref: str) -> "RunArtifact":
        """Reconstruct the stored :class:`RunArtifact` for a ref."""
        from ..runner import RunArtifact

        return RunArtifact.from_record(self.get_record(ref))

    def put_all(self, artifacts: Iterable["RunArtifact"], **kwargs: Any) -> list[str]:
        """File several artifacts; return their refs in order."""
        return [self.put(a, **kwargs) for a in artifacts]


def as_store(store: "ArtifactStore | str | os.PathLike") -> ArtifactStore:
    """Coerce a path into an :class:`ArtifactStore` (instances pass through)."""
    if isinstance(store, ArtifactStore):
        return store
    return ArtifactStore(store)
