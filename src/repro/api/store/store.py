"""Content-addressed artifact store: every run record filed under its spec hash.

Layout on disk::

    <root>/
      index.json             # human-readable: ref -> name/kind/when/headline
      records/<sha256>.json  # one full-fidelity RunArtifact record each
                             # (.json.gz in compressed stores; reads accept
                             # either, so mixed stores stay readable)

A record's key is :func:`~repro.api.store.canonical.content_hash` of its
resolved spec, so recording the same scenario twice *updates* one entry
(latest run wins — the store answers "what do the numbers for scenario X
look like now?"), while any spec change, however small, creates a new
identity.  Records are pure :meth:`RunArtifact.to_record` output — store
metadata lives only in the index — so ``from_record(get_record(ref))``
reconstructs an object equal to what ``put`` received.

Refs accepted anywhere a ref is taken: the full hash, any unambiguous
prefix, or a scenario name (resolving to its most recent record).
"""

from __future__ import annotations

import contextlib
import gzip
import json
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable

try:  # POSIX advisory locks; the portable fallback spins on O_EXCL.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms only
    fcntl = None  # type: ignore[assignment]

from .canonical import content_hash, short_ref

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..runner import RunArtifact

__all__ = ["ArtifactStore", "as_store", "DEFAULT_STORE_PATH"]

#: Where the CLI's record/replay/diff commands look when ``--store`` is omitted.
DEFAULT_STORE_PATH = "tdpipe-store"

#: Bump on any backward-incompatible change to the on-disk store layout.
STORE_VERSION = 1

_INDEX = "index.json"
_INDEX_LOCK = "index.lock"
_RECORDS = "records"

#: How long the fallback (non-fcntl) lock spins before giving up.
_LOCK_TIMEOUT_S = 30.0


class ArtifactStore:
    """A directory of content-addressed run records plus a readable index.

    Compaction knobs for stores that hold hundreds of runs (parallel
    sweeps): ``compress`` gzips new records (``records/<sha>.json.gz``,
    deterministic bytes via ``mtime=0``), ``lean`` drops the full-fidelity
    ``detail`` payload and keeps only spec + flat metrics.  Reads are always
    transparent across plain/gzip records; lean records replay and diff
    normally but cannot be reconstructed into live artifacts.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        compress: bool = False,
        lean: bool = False,
    ) -> None:
        self.root = Path(root)
        self.compress = compress
        self.lean = lean
        #: Refs written by *this* process, in put() order (what a CLI
        #: invocation just produced, vs. whatever the directory already held).
        self.session_refs: list[str] = []
        #: Refs served from the store instead of executing, in lookup order
        #: (``run_many(..., reuse=True)`` memo hits).  With
        #: :attr:`session_refs` this gives the session's hit/executed split.
        self.session_reused_refs: list[str] = []
        #: Test seam: called inside :meth:`put`'s locked index
        #: read-modify-write, right after the index is loaded.  Lets the
        #: concurrency regression test hold the critical section open and
        #: prove a second writer cannot interleave.
        self._after_load_index: Callable[[], None] | None = None

    # -- paths ---------------------------------------------------------- #
    @property
    def records_dir(self) -> Path:
        return self.root / _RECORDS

    @property
    def index_path(self) -> Path:
        return self.root / _INDEX

    def _record_path(self, ref: str) -> Path:
        return self.records_dir / f"{ref}.json"

    def _gz_record_path(self, ref: str) -> Path:
        return self.records_dir / f"{ref}.json.gz"

    # -- index ---------------------------------------------------------- #
    def _load_index(self) -> dict[str, Any]:
        if not self.index_path.exists():
            return {"store_version": STORE_VERSION, "next_seq": 0, "entries": {}}
        with open(self.index_path) as fh:
            index = json.load(fh)
        version = index.get("store_version")
        if version != STORE_VERSION:
            raise ValueError(
                f"store at {self.root} has layout version {version}; "
                f"this build speaks version {STORE_VERSION}"
            )
        return index

    def _save_index(self, index: dict[str, Any]) -> None:
        tmp = self.index_path.with_suffix(".json.tmp")
        with open(tmp, "w") as fh:
            json.dump(index, fh, indent=2, sort_keys=False, allow_nan=False)
            fh.write("\n")
        os.replace(tmp, self.index_path)

    @contextlib.contextmanager
    def _index_lock(self):
        """Exclusive inter-process lock for the index read-modify-write.

        Without it, two processes ``put``-ing into one store interleave
        ``_load_index``/``_save_index``: the later save silently drops the
        earlier entry and can double-assign ``seq`` from a stale
        ``next_seq``.  Uses an advisory ``flock`` on ``index.lock`` where
        available (POSIX), falling back to an ``O_EXCL`` spin lock with a
        stale-lock timeout elsewhere.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / _INDEX_LOCK
        if fcntl is not None:
            with open(path, "a+") as fh:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
                try:
                    yield
                finally:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
            return
        deadline = time.monotonic() + _LOCK_TIMEOUT_S  # pragma: no cover
        while True:  # pragma: no cover - non-POSIX platforms only
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                break
            except FileExistsError:
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"could not acquire {path} within {_LOCK_TIMEOUT_S}s; "
                        "remove the stale lock file if no writer is alive"
                    ) from None
                time.sleep(0.01)
        try:  # pragma: no cover
            yield
        finally:  # pragma: no cover
            os.close(fd)
            with contextlib.suppress(FileNotFoundError):
                os.unlink(path)

    # -- write ---------------------------------------------------------- #
    def put(self, artifact: "RunArtifact", *, allow_opaque: bool = False) -> str:
        """File one artifact under its spec hash; return the full ref.

        Artifacts carrying :attr:`RunArtifact.opaque_overrides` are rejected
        by default: their embedded spec alone cannot reproduce the run, so a
        later ``replay`` would silently compare against a different scenario.
        """
        if artifact.opaque_overrides and not allow_opaque:
            raise ValueError(
                "artifact carries opaque overrides "
                f"{list(artifact.opaque_overrides)} and is not replayable from "
                "its spec; pass allow_opaque=True to store it anyway"
            )
        ref = content_hash(artifact.spec)
        record = artifact.to_record(detail=not self.lean)
        self.records_dir.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(record, allow_nan=False) + "\n"
        record_path = (
            self._gz_record_path(ref) if self.compress else self._record_path(ref)
        )
        # The whole write — record file plus index read-modify-write — runs
        # under the index lock so concurrent puts from parallel jobs serialize
        # instead of losing entries or double-assigning seq numbers.
        with self._index_lock():
            tmp = record_path.with_name(record_path.name + ".tmp")
            if self.compress:
                # mtime=0 keeps the gzip bytes a pure function of the record,
                # so serial and parallel sweeps produce byte-identical stores.
                tmp.write_bytes(gzip.compress(payload.encode("utf-8"), mtime=0))
            else:
                tmp.write_text(payload)
            os.replace(tmp, record_path)
            # Re-recording a spec with the other compression setting must not
            # leave a stale sibling behind (reads prefer the plain file).
            stale = (
                self._record_path(ref) if self.compress
                else self._gz_record_path(ref)
            )
            if stale.exists():
                stale.unlink()

            index = self._load_index()
            if self._after_load_index is not None:
                self._after_load_index()
            entry: dict[str, Any] = {
                "seq": index["next_seq"],
                "name": artifact.spec.name or "scenario",
                "kind": artifact.kind,
                "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
                "describe": artifact.spec.describe(),
                "file": f"{_RECORDS}/{record_path.name}",
                "throughput_tps": record.get("throughput_tps"),
            }
            if self.lean:
                entry["lean"] = True
            if artifact.overrides:
                entry["overrides"] = dict(artifact.overrides)
            index["next_seq"] += 1
            index["entries"][ref] = entry
            self._save_index(index)
        self.session_refs.append(ref)
        return ref

    # -- read ----------------------------------------------------------- #
    def refs(self) -> list[str]:
        """All stored refs, oldest first (by last-written sequence)."""
        entries = self._load_index()["entries"]
        return sorted(entries, key=lambda ref: entries[ref]["seq"])

    def entries(self) -> list[tuple[str, dict[str, Any]]]:
        """(ref, index entry) pairs, oldest first."""
        entries = self._load_index()["entries"]
        return sorted(entries.items(), key=lambda kv: kv[1]["seq"])

    def __len__(self) -> int:
        return len(self._load_index()["entries"])

    def __contains__(self, ref: object) -> bool:
        return isinstance(ref, str) and ref in self._load_index()["entries"]

    def resolve(self, token: str) -> str:
        """Resolve a full hash, scenario name, or unambiguous hash prefix.

        Match priority is exact ref, then name, then prefix.  Names are
        checked *before* prefixes: a scenario named ``"beef"`` (or any other
        name that happens to be valid hex) must resolve to that scenario's
        record, never silently to whichever other record's hash starts with
        those characters.
        """
        entries = self._load_index()["entries"]
        if token in entries:
            return token
        name_hits = [
            (entry["seq"], ref)
            for ref, entry in entries.items()
            if entry["name"] == token
        ]
        if name_hits:
            return max(name_hits)[1]  # most recent record under that name
        prefix_hits = [ref for ref in entries if ref.startswith(token)]
        if len(prefix_hits) == 1:
            return prefix_hits[0]
        if len(prefix_hits) > 1:
            raise KeyError(
                f"ref prefix {token!r} is ambiguous: "
                f"{sorted(short_ref(r) for r in prefix_hits)}"
            )
        raise KeyError(
            f"no record matches {token!r} in store {self.root} "
            f"({len(entries)} records)"
        )

    def get_record(self, ref: str) -> dict[str, Any]:
        """The raw record dict for a ref (full hash / prefix / name).

        Reads are transparent across plain and gzip records regardless of
        this store's ``compress`` setting.  The file named by the index
        entry wins when both compression variants exist (e.g. a ``put``
        interrupted between writing the new variant and unlinking the old
        one): the index is only updated after a record write completes, so
        it always names the last *completed* put.
        """
        full = self.resolve(ref)
        entry = self._load_index()["entries"].get(full, {})
        candidates = []
        if entry.get("file"):
            candidates.append(self.root / entry["file"])
        candidates += [self._record_path(full), self._gz_record_path(full)]
        for path in candidates:
            if path.exists():
                if path.suffix == ".gz":
                    with gzip.open(path, "rt") as fh:
                        return json.load(fh)
                with open(path) as fh:
                    return json.load(fh)
        raise FileNotFoundError(
            f"store {self.root} has no record file for ref {short_ref(full)}"
        )

    def get(self, ref: str) -> "RunArtifact":
        """Reconstruct the stored :class:`RunArtifact` for a ref."""
        from ..runner import RunArtifact

        record = self.get_record(ref)
        if "detail" not in record:
            raise ValueError(
                f"record {short_ref(self.resolve(ref))} is lean (no detail "
                "payload); it supports replay/diff but cannot be "
                "reconstructed into a RunArtifact"
            )
        return RunArtifact.from_record(record)

    def put_all(self, artifacts: Iterable["RunArtifact"], **kwargs: Any) -> list[str]:
        """File several artifacts; return their refs in order."""
        return [self.put(a, **kwargs) for a in artifacts]

    # -- maintenance ----------------------------------------------------- #
    def _record_files(self) -> dict[str, list[Path]]:
        """ref -> record files on disk (plain before gzip, like reads)."""
        found: dict[str, list[Path]] = {}
        if not self.records_dir.exists():
            return found
        for path in sorted(self.records_dir.iterdir()):
            if path.name.endswith(".json"):
                found.setdefault(path.name[: -len(".json")], []).insert(0, path)
            elif path.name.endswith(".json.gz"):
                found.setdefault(path.name[: -len(".json.gz")], []).append(path)
        return found

    @staticmethod
    def _read_record_file(path: Path) -> dict[str, Any]:
        if path.suffix == ".gz":
            with gzip.open(path, "rt") as fh:
                return json.load(fh)
        with open(path) as fh:
            return json.load(fh)

    def gc(self, *, dry_run: bool = False) -> dict[str, Any]:
        """Prune files the index does not reference (and dead index entries).

        Removes record files (``records/*.json[.gz]``) no index entry names
        — stale compression siblings, leftovers of interrupted puts, records
        copied in by hand — plus orphaned ``*.tmp`` files, and drops index
        entries whose record file has vanished.  Run :meth:`fsck` first if
        the *index* is the casualty: gc trusts the index, fsck rebuilds it.

        ``dry_run=True`` reports exactly what a real gc would prune without
        touching the store (the report's ``dry_run`` key records which mode
        produced it).
        """
        with self._index_lock():
            index = self._load_index()
            referenced = {
                (self.root / entry["file"]).resolve()
                for entry in index["entries"].values()
                if entry.get("file")
            }
            removed: list[str] = []
            if self.records_dir.exists():
                for path in sorted(self.records_dir.iterdir()):
                    keep = (
                        path.name.endswith((".json", ".json.gz"))
                        and path.resolve() in referenced
                    )
                    if not keep:
                        if not dry_run:
                            path.unlink()
                        removed.append(path.name)
            dropped = sorted(
                ref
                for ref, entry in index["entries"].items()
                if not (self.root / entry["file"]).exists()
            )
            if dropped and not dry_run:
                for ref in dropped:
                    del index["entries"][ref]
                self._save_index(index)
        return {
            "removed_files": removed,
            "dropped_entries": dropped,
            "entries": len(index["entries"]) - (len(dropped) if dry_run else 0),
            "dry_run": dry_run,
        }

    def fsck(self) -> dict[str, Any]:
        """Rebuild ``index.json`` from the record files, deterministically.

        Every index field except ``seq``/``created_at`` is a pure function
        of the record it names, so the index is reconstructible after loss
        or corruption: entries are rebuilt in ref-sorted order (``seq`` =
        rank — put order is not recoverable from content-addressed records),
        ``created_at`` is carried over from a readable existing index and
        falls back to the record file's mtime.  Records whose filename does
        not match the content hash of their embedded spec are reported and
        left out of the index (gc will then prune them).  Idempotent: a
        second fsck reproduces the index byte-for-byte.
        """
        from ..spec import ScenarioSpec

        with self._index_lock():
            created_at: dict[str, str] = {}
            with contextlib.suppress(Exception):
                for ref, entry in self._load_index()["entries"].items():
                    if entry.get("created_at"):
                        created_at[ref] = entry["created_at"]
            entries: dict[str, Any] = {}
            mismatched: list[str] = []
            stale_siblings: list[str] = []
            for seq, (ref, paths) in enumerate(sorted(self._record_files().items())):
                path = paths[0]
                stale_siblings += [p.name for p in paths[1:]]
                try:
                    record = self._read_record_file(path)
                    spec = ScenarioSpec.from_dict(record["spec"])
                    ok = content_hash(spec) == ref
                except Exception:
                    ok = False
                if not ok:
                    mismatched.append(path.name)
                    continue
                entry: dict[str, Any] = {
                    "seq": seq,
                    "name": spec.name or "scenario",
                    "kind": record["kind"],
                    "created_at": created_at.get(ref) or time.strftime(
                        "%Y-%m-%dT%H:%M:%SZ", time.gmtime(path.stat().st_mtime)
                    ),
                    "describe": spec.describe(),
                    "file": f"{_RECORDS}/{path.name}",
                    "throughput_tps": record.get("throughput_tps"),
                }
                if "detail" not in record:
                    entry["lean"] = True
                if record.get("overrides"):
                    entry["overrides"] = dict(record["overrides"])
                entries[ref] = entry
            # Mismatched files shifted ranks out of a dense 0..n-1 range;
            # renumber so seq is a pure function of the surviving refs.
            for seq, entry in enumerate(entries.values()):
                entry["seq"] = seq
            index = {
                "store_version": STORE_VERSION,
                "next_seq": len(entries),
                "entries": entries,
            }
            self._save_index(index)
        return {
            "entries": len(entries),
            "mismatched": mismatched,
            "stale_siblings": stale_siblings,
        }


def as_store(store: "ArtifactStore | str | os.PathLike") -> ArtifactStore:
    """Coerce a path into an :class:`ArtifactStore` (instances pass through)."""
    if isinstance(store, ArtifactStore):
        return store
    return ArtifactStore(store)
