"""Named scenario registry: experiments publish spec builders by name.

Experiment modules register builders — callables returning a
:class:`~repro.api.spec.ScenarioSpec` or :class:`~repro.api.sweep.SweepSpec`
— under stable names, so the CLI (``tdpipe-bench run --spec <name>``), the
examples and ad-hoc scripts can reproduce any published experiment without
importing its module by hand:

    @register_scenario("cluster-hetero")
    def _hetero(**overrides) -> SweepSpec: ...

    spec = get_scenario("cluster-hetero")

Builders accept keyword overrides so registered scenarios stay
parameterizable (e.g. ``get_scenario("fig15-work-stealing", node="A100",
model="70B")``).
"""

from __future__ import annotations

from typing import Any, Callable, Union

from .spec import ScenarioSpec
from .sweep import SweepSpec

__all__ = ["register_scenario", "get_scenario", "scenario_names"]

SpecBuilder = Callable[..., Union[ScenarioSpec, SweepSpec]]

_SCENARIOS: dict[str, SpecBuilder] = {}


def register_scenario(name: str) -> Callable[[SpecBuilder], SpecBuilder]:
    """Decorator: publish a spec builder under ``name``."""

    def deco(builder: SpecBuilder) -> SpecBuilder:
        if name in _SCENARIOS and _SCENARIOS[name] is not builder:
            raise ValueError(f"scenario {name!r} already registered")
        _SCENARIOS[name] = builder
        return builder

    return deco


def _ensure_experiments_loaded() -> None:
    # Experiment modules register their scenarios at import time; pull them
    # in lazily so `repro.api` stays importable without the whole harness
    # (and without a circular import at module level).
    import repro.experiments  # noqa: F401


def get_scenario(name: str, **overrides: Any) -> ScenarioSpec | SweepSpec:
    """Build a registered scenario by name (keyword overrides forwarded)."""
    _ensure_experiments_loaded()
    try:
        builder = _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        ) from None
    return builder(**overrides)


def scenario_names() -> tuple[str, ...]:
    """All registered scenario names, sorted."""
    _ensure_experiments_loaded()
    return tuple(sorted(_SCENARIOS))
