"""Spec grids: a base scenario plus override axes.

A :class:`SweepSpec` turns parameter studies into data: one base
:class:`~repro.api.spec.ScenarioSpec` and a list of :class:`SweepAxis`
(dotted override path + values).  :meth:`SweepSpec.expand` takes the
cartesian product in axis order — the first axis is the outermost loop, so a
two-axis sweep reproduces the classic nested-``for`` ordering — and each
point is a full, standalone scenario (serializable, replayable, and tagged
with its override coordinates).
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, fields
from typing import Any, Mapping

from .spec import SCHEMA_VERSION, ScenarioSpec, _reject_unknown

__all__ = ["SweepAxis", "SweepSpec", "SweepPointSpec"]


@dataclass(frozen=True)
class SweepAxis:
    """One swept parameter: a dotted override path and its values."""

    path: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("sweep axis needs a non-empty path")
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValueError(f"sweep axis {self.path!r} needs at least one value")


@dataclass(frozen=True)
class SweepPointSpec:
    """One expanded grid point: the concrete spec plus its coordinates."""

    spec: ScenarioSpec
    overrides: dict[str, Any]


@dataclass(frozen=True)
class SweepSpec:
    """A scenario grid: base spec × override axes."""

    base: ScenarioSpec
    axes: tuple[SweepAxis, ...]
    name: str | None = None
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not isinstance(self.axes, tuple):
            object.__setattr__(self, "axes", tuple(self.axes))
        if not self.axes:
            raise ValueError("a sweep needs at least one axis")
        if self.schema_version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported schema_version {self.schema_version} "
                f"(this build speaks version {SCHEMA_VERSION})"
            )
        # Validate every grid point eagerly: a bad axis value should fail at
        # build time, not halfway through an expensive sweep.
        self.expand()

    @property
    def num_points(self) -> int:
        n = 1
        for axis in self.axes:
            n *= len(axis.values)
        return n

    def expand(self) -> list[SweepPointSpec]:
        """All grid points, first axis outermost (nested-loop order).

        Unnamed base specs inherit the sweep's name, so a grid point filed
        in an artifact store resolves by the experiment name it came from.
        """
        points = []
        for combo in itertools.product(*(axis.values for axis in self.axes)):
            overrides = {
                axis.path: value for axis, value in zip(self.axes, combo)
            }
            spec = self.base.with_overrides(overrides)
            if self.name is not None and spec.name is None:
                spec = dataclasses.replace(spec, name=self.name)
            points.append(SweepPointSpec(spec=spec, overrides=overrides))
        return points

    # -- serialization -------------------------------------------------- #
    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "sweep",
            "name": self.name,
            "schema_version": self.schema_version,
            "base": self.base.to_dict(),
            "axes": [
                {"path": a.path, "values": list(a.values)} for a in self.axes
            ],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        if not isinstance(data, Mapping):
            raise ValueError(f"sweep must be a mapping, got {type(data).__name__}")
        data = dict(data)
        kind = data.pop("kind", "sweep")
        if kind != "sweep":
            raise ValueError(f'sweep dict must carry kind="sweep", got {kind!r}')
        _reject_unknown(cls, data)
        axes = []
        for i, axis in enumerate(data.get("axes", ())):
            extra = sorted(set(axis) - {"path", "values"})
            if extra:
                raise ValueError(f"unknown sweep-axis key(s) {extra} in axis {i}")
            axes.append(SweepAxis(path=axis["path"], values=tuple(axis["values"])))
        kwargs = {f.name: data[f.name] for f in fields(cls) if f.name in data}
        kwargs["base"] = ScenarioSpec.from_dict(data["base"])
        kwargs["axes"] = tuple(axes)
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))
