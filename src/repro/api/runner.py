"""Execute a :class:`~repro.api.spec.ScenarioSpec`: one ``run()`` for everything.

``run(spec)`` is the system's single execution path.  It materializes the
workload (corpus, arrivals, SLO classes), the fleet (nodes, replicas), the
engines and the control plane from the declarative spec, dispatches to the
single-engine or cluster path, and returns a :class:`RunArtifact` — the
result plus the fully-resolved spec and schema version, so every benchmark
record is self-describing and replayable.

The legacy entry points (``repro.experiments.run_system`` /
``run_cluster``) are thin shims over this function.  They may pass live
objects (a trained predictor, a custom :class:`Router`, a pre-stamped
request list) through the keyword overrides; anything passed that way is
recorded in ``RunArtifact.opaque_overrides`` because it cannot be replayed
from the serialized spec alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dc_field, replace
from typing import Any, Mapping, Sequence

from ..cluster.control.routing import Router, make_router
from ..cluster.engine import ClusterEngine
from ..core.policies import (
    DecodeSwitchPolicy,
    FinishRatioPolicy,
    GreedyPrefillPolicy,
    IntensityPolicy,
    OccupancyRatioPolicy,
    PrefillSwitchPolicy,
)
from ..hardware.node import NodeSpec, make_node
from ..metrics.cluster import ClusterResult
from ..metrics.results import RunResult
from ..metrics.segments import compute_segment_stats
from ..models.spec import ModelSpec, get_model
from ..predictor import ConstantPredictor, OraclePredictor, OutputLengthPredictor
from ..runtime.config import EngineConfig
from ..workload.arrivals import (
    with_burst_arrivals,
    with_poisson_arrivals,
    with_uniform_arrivals,
)
from ..workload.regimes import compile_regime, stamp_requests
from ..workload.request import Request
from ..workload.slo import with_slo_mix
from .provenance import provenance_stamp
from .spec import SCHEMA_VERSION, ScenarioSpec
from .sweep import SweepSpec

__all__ = ["RunArtifact", "run", "run_sweep", "load_spec"]


@dataclass
class RunArtifact:
    """A run's result, bundled with the resolved spec that produced it."""

    spec: ScenarioSpec
    result: RunResult | ClusterResult
    wall_time_s: float
    schema_version: int = SCHEMA_VERSION
    #: Sweep coordinates (dotted path -> value) when part of a grid.
    overrides: dict[str, Any] = dc_field(default_factory=dict)
    #: Names of keyword objects that bypassed the declarative spec (a live
    #: predictor, router instance, request list, ...) — present means the
    #: embedded spec alone does not fully reproduce this run.
    opaque_overrides: tuple[str, ...] = ()
    #: True when this artifact was served from an :class:`ArtifactStore`
    #: instead of being executed (``run_many(..., reuse=True)``).  Session
    #: state, not provenance: excluded from equality and never serialized.
    reused: bool = dc_field(default=False, compare=False, repr=False)

    @property
    def kind(self) -> str:
        return "cluster" if isinstance(self.result, ClusterResult) else "engine"

    def to_record(self, detail: bool = True) -> dict[str, Any]:
        """JSON-ready benchmark record embedding the resolved spec.

        With ``detail`` (the default, what the artifact store files) the
        record carries the result's full-fidelity state and
        :meth:`from_record` reconstructs an equal artifact; ``detail=False``
        keeps only the flat metrics (the lean ``--bench-json`` form).
        """
        record = {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "spec": self.spec.to_dict(),
            "wall_time_s": self.wall_time_s,
            # Which code produced this record — the store-as-memoizer reuse
            # gate (repro.api.provenance).  Deterministic per source tree,
            # so serial and parallel records stay byte-identical.
            "provenance": provenance_stamp(),
        }
        if self.overrides:
            record["overrides"] = dict(self.overrides)
        if self.opaque_overrides:
            record["opaque_overrides"] = list(self.opaque_overrides)
        record.update(self.result.to_record(detail=detail))
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "RunArtifact":
        """Strict inverse of :meth:`to_record` (full records only)."""
        kind = record.get("kind")
        if kind == "cluster":
            result: RunResult | ClusterResult = ClusterResult.from_record(record)
        elif kind == "engine":
            result = RunResult.from_record(record)
        else:
            raise ValueError(
                f'record kind must be "engine" or "cluster", got {kind!r}'
            )
        return cls(
            spec=ScenarioSpec.from_dict(record["spec"]),
            result=result,
            wall_time_s=float(record["wall_time_s"]),
            schema_version=int(record["schema_version"]),
            overrides=dict(record.get("overrides", {})),
            opaque_overrides=tuple(record.get("opaque_overrides", ())),
        )

    def summary(self) -> str:
        return f"{self.spec.describe()}\n{self.result.summary()}"


# --------------------------------------------------------------------- #
# Spec -> objects.
# --------------------------------------------------------------------- #
def _build_nodes(spec: ScenarioSpec) -> list[NodeSpec]:
    nodes = []
    for name in spec.fleet.node_names():
        node = make_node(name, spec.fleet.num_gpus)
        if spec.fleet.allreduce_efficiency is not None:
            node = replace(
                node,
                interconnect=replace(
                    node.interconnect,
                    allreduce_efficiency=spec.fleet.allreduce_efficiency,
                ),
            )
        nodes.append(node)
    return nodes


def _build_requests(spec: ScenarioSpec) -> list[Request]:
    from ..experiments.common import ExperimentScale, eval_requests, get_dataset
    from ..workload.dataset import sample_eval_requests

    w = spec.workload
    scale = ExperimentScale(factor=w.scale, seed=w.seed)
    if w.arrival == "regime":
        # The regime decides how much traffic there is; the corpus (and so
        # the trained predictor) still follows ``scale``.  Arrival times,
        # SLO classes and session ids all come from the compiled schedule.
        compiled = compile_regime(
            w.regime_spec(), seed=w.seed, default_slo_mix=w.slo_mix
        )
        pool = sample_eval_requests(
            get_dataset(scale), n=compiled.num_requests, seed=scale.seed
        )
        return stamp_requests(pool, compiled)
    if w.num_requests is not None:
        requests = sample_eval_requests(
            get_dataset(scale), n=w.num_requests, seed=scale.seed
        )
    else:
        requests = eval_requests(scale)
    if w.arrival == "poisson":
        requests = with_poisson_arrivals(requests, w.rate_rps, seed=scale.seed)
    elif w.arrival == "uniform":
        requests = with_uniform_arrivals(requests, w.rate_rps)
    elif w.arrival == "burst":
        requests = with_burst_arrivals(requests, w.burst_size, w.burst_interval_s)
    if w.slo_mix is not None:
        requests = with_slo_mix(requests, w.slo_mix, seed=scale.seed)
    return requests


def _build_predictor(
    spec: ScenarioSpec, systems: Sequence[str], router: str | Router | None
) -> OutputLengthPredictor | None:
    """Resolve the spec's predictor selection (None = auto)."""
    from ..experiments.common import ExperimentScale, get_predictor

    kind = spec.engine.predictor
    scale = ExperimentScale(factor=spec.workload.scale, seed=spec.workload.seed)
    if kind == "oracle":
        return OraclePredictor()
    if kind == "constant":
        return ConstantPredictor(spec.engine.predictor_constant)
    # Router *instances* don't trigger training (they may carry their own
    # predictor) — this mirrors the legacy run_cluster behavior exactly.
    router_name = router if isinstance(router, str) else None
    needs = "TD-Pipe" in systems or router_name == "phase-aware"
    if kind == "trained" or needs:
        return get_predictor(scale)
    return None


def _build_prefill_policy(policy: Mapping[str, Any] | None) -> PrefillSwitchPolicy | None:
    if policy is None:
        return None
    if policy["name"] == "greedy":
        return GreedyPrefillPolicy()
    return OccupancyRatioPolicy(ratio=policy["ratio"])


def _build_decode_policy(policy: Mapping[str, Any] | None) -> DecodeSwitchPolicy | None:
    if policy is None:
        return None
    if policy["name"] == "intensity":
        kwargs = {
            k: policy[k] for k in ("peak_batch_size", "check_interval") if k in policy
        }
        return IntensityPolicy(**kwargs)
    return FinishRatioPolicy(ratio=policy["ratio"])


# --------------------------------------------------------------------- #
# The front door.
# --------------------------------------------------------------------- #
def run(
    spec: ScenarioSpec,
    *,
    store: Any | None = None,
    requests: list[Request] | None = None,
    predictor: OutputLengthPredictor | None = None,
    config: EngineConfig | None = None,
    router: Router | None = None,
    autoscaler: Any | None = None,
    prefill_policy: PrefillSwitchPolicy | None = None,
    decode_policy: DecodeSwitchPolicy | None = None,
    model: ModelSpec | None = None,
    nodes: Sequence[NodeSpec] | None = None,
) -> RunArtifact:
    """Execute one scenario; return result + resolved spec + provenance.

    ``store`` (an :class:`~repro.api.store.ArtifactStore` or a path) files
    the finished artifact under its content hash before returning.

    The remaining keyword arguments are the programmatic escape hatch for
    live objects the declarative spec cannot carry (the legacy shims use
    them); each one supplied is noted in
    :attr:`RunArtifact.opaque_overrides`.
    """
    from ..experiments.common import build_engine

    spec = spec.resolved()
    opaque = tuple(
        name
        for name, value in (
            ("requests", requests),
            ("predictor", predictor),
            ("config", config),
            ("router", router),
            ("autoscaler", autoscaler),
            ("prefill_policy", prefill_policy),
            ("decode_policy", decode_policy),
            ("model", model),
            ("nodes", nodes),
        )
        if value is not None
    )
    t0 = time.time()
    if model is None:
        model = get_model(spec.engine.model)
    if nodes is None:
        nodes = _build_nodes(spec)
    replicas = len(nodes)
    systems = spec.engine.system_names(replicas)
    if requests is None:
        requests = _build_requests(spec)
    if config is None and spec.engine.config:
        config = EngineConfig(**spec.engine.config)
    if prefill_policy is None:
        prefill_policy = _build_prefill_policy(spec.engine.prefill_policy)
    if decode_policy is None:
        decode_policy = _build_decode_policy(spec.engine.decode_policy)

    if spec.mode == "engine":
        if replicas != 1:
            raise ValueError(f"engine mode needs exactly one node, got {replicas}")
        if predictor is None:
            predictor = _build_predictor(spec, systems, None)
        engine = build_engine(
            systems[0],
            nodes[0],
            model,
            predictor=predictor,
            config=config,
            prefill_policy=prefill_policy,
            decode_policy=decode_policy,
            work_stealing=spec.engine.work_stealing,
        )
        result: RunResult | ClusterResult = engine.run(requests)
    else:
        router_sel: str | Router = router if router is not None else spec.control.router
        if predictor is None:
            predictor = _build_predictor(spec, systems, router_sel)
        if autoscaler is None:
            autoscaler = spec.control.build_autoscaler()
        factories = [
            lambda sim, name=name, nd=nd: build_engine(
                name,
                nd,
                model,
                predictor=predictor,
                config=config,
                prefill_policy=prefill_policy,
                decode_policy=decode_policy,
                work_stealing=spec.engine.work_stealing,
                sim=sim,
            )
            for name, nd in zip(systems, nodes)
        ]
        router_obj = make_router(router_sel, predictor=predictor)
        cluster = ClusterEngine(factories, router=router_obj, autoscaler=autoscaler)
        result = cluster.run(requests)
        if spec.workload.arrival == "regime":
            # Slice the pooled finished states by the regime's windows so
            # "did the autoscaler survive the lunch spike" is a metric.
            pooled = [s for replica in cluster.replicas for s in replica.finished]
            result.segments = compute_segment_stats(
                pooled,
                spec.workload.regime_spec(),
                fleet_timeline=result.fleet_timeline,
                num_replicas=result.num_replicas,
            )
    artifact = RunArtifact(
        spec=spec,
        result=result,
        wall_time_s=time.time() - t0,
        opaque_overrides=opaque,
    )
    if store is not None:
        from .store import as_store

        as_store(store).put(artifact)
    return artifact


def run_sweep(
    sweep: SweepSpec,
    *,
    store: Any | None = None,
    jobs: int | None = None,
    backend: str | None = None,
    reuse: bool = False,
    **kwargs: Any,
) -> list[RunArtifact]:
    """Run every grid point of a :class:`SweepSpec` (nested-loop order).

    ``store`` files every point's artifact (tagged with its sweep
    coordinates) under its own content hash.  ``jobs`` executes the grid on
    a process pool (see :mod:`repro.api.parallel`); results, hashes and the
    store index are identical to the serial default.  ``backend="fabric"``
    runs the grid through the distributed work queue instead (``jobs``
    local workers coordinating via a spool directory; see
    :mod:`repro.fabric`) — record content hashes still match the serial
    run.  ``reuse=True`` turns the store into a memoizer: grid points whose
    content hash is already filed under a matching code-provenance stamp
    are served from the store and only the misses execute (see
    :func:`repro.api.parallel.run_many`).  ``kwargs`` are forwarded to
    :func:`run` for each point (live-object overrides shared across the
    grid, e.g. a pre-trained predictor) and are serial-only: live objects
    cannot cross a process boundary.
    """
    from .parallel import BACKENDS, resolve_jobs, run_many

    if backend is not None and backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; options: {', '.join(BACKENDS)}"
        )
    if store is not None:
        from .store import as_store

        store = as_store(store)
    points = sweep.expand()
    if reuse:
        if kwargs:
            # A live object changes what executes without changing the spec
            # hash, so a cached record could silently stand in for a
            # different run — refuse rather than guess.
            raise ValueError(
                "run_sweep(reuse=True) cannot carry live-object overrides "
                f"({sorted(kwargs)}); their effect is invisible to the "
                "spec's content hash — drop them or run with reuse=False"
            )
        return run_many(
            [point.spec for point in points],
            jobs=jobs,
            backend=backend,
            store=store,
            reuse=True,
            overrides=[point.overrides for point in points],
        )
    if backend != "fabric" and (backend == "serial" or resolve_jobs(jobs) <= 1):
        # Serial: run-tag-file incrementally, so an interrupted sweep keeps
        # every completed point's record (the historic behavior).  The
        # fabric never takes this shortcut: even one worker exercises the
        # real spool coordination path.
        artifacts = []
        for point in points:
            artifact = run(point.spec, **kwargs)
            artifact.overrides = dict(point.overrides)
            if store is not None:
                store.put(artifact)
            artifacts.append(artifact)
        return artifacts
    if kwargs:
        raise ValueError(
            "run_sweep(jobs>1 or backend=...) cannot carry live-object "
            f"overrides ({sorted(kwargs)}); they do not serialize across "
            "processes — drop them or run serially with jobs=1"
        )
    return run_many(
        [point.spec for point in points],
        jobs=jobs,
        backend=backend,
        store=store,
        overrides=[point.overrides for point in points],
    )


def load_spec(data: Mapping[str, Any]) -> ScenarioSpec | SweepSpec:
    """Deserialize either spec kind from plain data.

    Dispatches on the optional ``kind`` key: ``"sweep"`` loads a
    :class:`SweepSpec`, anything else (absent or ``"scenario"``) a
    :class:`ScenarioSpec`.
    """
    if not isinstance(data, Mapping):
        raise ValueError(f"spec must be a mapping, got {type(data).__name__}")
    kind = data.get("kind", "scenario")
    if kind == "sweep":
        return SweepSpec.from_dict(data)
    if kind == "scenario":
        data = {k: v for k, v in data.items() if k != "kind"}
        return ScenarioSpec.from_dict(data)
    raise ValueError(f'unknown spec kind {kind!r}; options: "scenario", "sweep"')
