"""Code-provenance fingerprinting: *which code* produced a record.

The artifact store keys records by the content hash of their resolved spec,
which answers "what ran" but not "on which code".  That distinction is what
makes store-backed memoization (``run_many(..., store=..., reuse=True)``)
safe: a stored record may substitute for a fresh execution only if the code
that would execute it today is the code that produced it.  This module
computes that identity:

* :func:`code_fingerprint` — SHA-256 over the full ``repro`` package tree
  (every ``.py`` file, path + contents), so *any* source change — a policy
  tweak, a cost-model constant, a scheduler fix — invalidates every cached
  record at once.  Conservative by design: false misses cost one re-run,
  false hits silently return stale numbers.
* :func:`provenance_stamp` — the dict stamped into every
  :meth:`RunArtifact.to_record <repro.api.runner.RunArtifact.to_record>`:
  package version plus the tree fingerprint.

The fingerprint is computed once per process and cached (workers forked by
the parallel executor inherit the cache).  The ``TDPIPE_CODE_FINGERPRINT``
environment variable overrides it — the test seam for forcing hits or
misses without editing source files.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

__all__ = ["code_fingerprint", "provenance_stamp"]

_ENV_OVERRIDE = "TDPIPE_CODE_FINGERPRINT"

_cached: str | None = None


def _package_root() -> Path:
    # provenance.py lives at src/repro/api/provenance.py -> src/repro.
    return Path(__file__).resolve().parent.parent


def _compute_fingerprint() -> str:
    digest = hashlib.sha256()
    root = _package_root()
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(path.relative_to(root).as_posix().encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def code_fingerprint() -> str:
    """SHA-256 hex digest of the ``repro`` source tree (cached per process)."""
    override = os.environ.get(_ENV_OVERRIDE)
    if override:
        return override
    global _cached
    if _cached is None:
        _cached = _compute_fingerprint()
    return _cached


def provenance_stamp() -> dict[str, str]:
    """The provenance dict every artifact record carries.

    Two records with equal stamps were produced by byte-identical source
    trees of the same package version — the precondition for one to be
    reused in place of re-executing the other.
    """
    from .. import __version__

    return {"package": __version__, "code": code_fingerprint()}
