"""Process-pool execution of scenario specs: the parallel front door.

PR 3/4 made every run a serializable :class:`~repro.api.spec.ScenarioSpec`
and every result a reconstructible record — which turns sweep grids, figure
ablations and store replays into embarrassingly parallel data.  This module
cashes that in: :func:`run_many` serializes resolved specs into worker
processes, each worker executes the one true :func:`repro.api.run`, and the
parent reconstructs full-fidelity :class:`~repro.api.runner.RunArtifact`
objects **in submission order**.

Determinism contract
--------------------
The simulator is seeded and single-threaded, so a spec's result does not
depend on which process executes it.  Parallel execution therefore yields

* the same :class:`RunResult`/:class:`ClusterResult` objects,
* the same content hashes (they cover the resolved spec only), and
* the same store index (artifacts are filed in submission order by the
  parent, never by the workers)

as serial execution — only ``wall_time_s`` (per-host timing) differs.
``jobs=None``/``0``/``1`` runs serially in-process, so the default path is
byte-for-byte the pre-parallel behavior.

Workers prefer the ``fork`` start method: they inherit the parent's warmed
imports, dataset/predictor caches and hash seed, so pool startup is
milliseconds and cross-process hash identity matches the in-process runs.
``spawn`` is the portable fallback.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from .runner import RunArtifact
    from .spec import ScenarioSpec

__all__ = ["run_many", "run_fresh_records", "resolve_jobs"]


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value into a worker count.

    ``None``/``0``/``1`` mean serial; a negative value means "all cores".
    """
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return max(os.cpu_count() or 1, 1)
    return int(jobs)


def _mp_context():
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


# --------------------------------------------------------------------- #
# Worker entry points (top-level so every start method can import them).
# --------------------------------------------------------------------- #
def _execute_payload(payload: str) -> dict[str, Any] | None:
    """One resolved-spec JSON in, one full artifact record out (or ``None``
    for an OOM layout when the payload asks for OOM tolerance)."""
    from ..kvcache.capacity import OutOfMemoryError
    from .runner import run
    from .spec import ScenarioSpec

    data = json.loads(payload)
    spec = ScenarioSpec.from_dict(data["spec"])
    try:
        return run(spec).to_record(detail=True)
    except OutOfMemoryError:
        if data["oom_to_none"]:
            return None
        raise


def _execute_fresh_payload(payload: str) -> dict[str, Any]:
    """Replay worker: spec JSON in, detail-less metric record out."""
    from .runner import run
    from .spec import ScenarioSpec

    spec = ScenarioSpec.from_dict(json.loads(payload))
    return run(spec).to_record(detail=False)


def _pool_map(fn, payloads: Sequence[str], jobs: int) -> list:
    workers = min(jobs, len(payloads))
    with ProcessPoolExecutor(max_workers=workers, mp_context=_mp_context()) as pool:
        # Executor.map preserves submission order, so results (and any
        # store filing done by the caller) are deterministic.
        return list(pool.map(fn, payloads))


# --------------------------------------------------------------------- #
# The parallel executors.
# --------------------------------------------------------------------- #
def run_many(
    specs: Iterable["ScenarioSpec"],
    *,
    jobs: int | None = None,
    oom_to_none: bool = False,
) -> list["RunArtifact | None"]:
    """Execute many scenario specs, optionally on a process pool.

    Parameters
    ----------
    specs:
        Scenario specs to execute.  Each is resolved up front, so workers
        and the serial path see identical inputs.
    jobs:
        Worker processes (see :func:`resolve_jobs`).  Serial by default.
    oom_to_none:
        When true, a spec whose layout cannot hold its model yields ``None``
        instead of raising (fig11's grey OOM cells).

    Returns the artifacts in the order the specs were given.  Callers file
    them into a store themselves (after tagging sweep coordinates), in this
    order, so parallel store indexes match serial ones.
    """
    from ..kvcache.capacity import OutOfMemoryError
    from .runner import RunArtifact, run

    resolved = [spec.resolved() for spec in specs]
    n_jobs = resolve_jobs(jobs)
    artifacts: list[RunArtifact | None]
    if n_jobs <= 1 or len(resolved) <= 1:
        artifacts = []
        for spec in resolved:
            try:
                artifacts.append(run(spec))
            except OutOfMemoryError:
                if not oom_to_none:
                    raise
                artifacts.append(None)
    else:
        payloads = [
            json.dumps({"spec": spec.to_dict(), "oom_to_none": oom_to_none})
            for spec in resolved
        ]
        records = _pool_map(_execute_payload, payloads, n_jobs)
        artifacts = [
            None if record is None else RunArtifact.from_record(record)
            for record in records
        ]
    return artifacts


def run_fresh_records(
    spec_dicts: Sequence[Mapping[str, Any]], *, jobs: int | None = None
) -> list[dict[str, Any]]:
    """Execute plain spec dicts; return detail-less records in order.

    The parallel backend of :func:`repro.api.store.replay_all`: stored
    records already carry their specs as plain data, so replaying a store is
    a pure fan-out of (spec dict -> fresh metric record).
    """
    from .runner import run
    from .spec import ScenarioSpec

    n_jobs = resolve_jobs(jobs)
    if n_jobs <= 1 or len(spec_dicts) <= 1:
        return [
            run(ScenarioSpec.from_dict(d)).to_record(detail=False)
            for d in spec_dicts
        ]
    payloads = [json.dumps(dict(d)) for d in spec_dicts]
    return _pool_map(_execute_fresh_payload, payloads, n_jobs)
