"""Process-pool execution of scenario specs: the parallel front door.

PR 3/4 made every run a serializable :class:`~repro.api.spec.ScenarioSpec`
and every result a reconstructible record — which turns sweep grids, figure
ablations and store replays into embarrassingly parallel data.  This module
cashes that in: :func:`run_many` serializes resolved specs into worker
processes, each worker executes the one true :func:`repro.api.run`, and the
parent reconstructs full-fidelity :class:`~repro.api.runner.RunArtifact`
objects **in submission order**.

Determinism contract
--------------------
The simulator is seeded and single-threaded, so a spec's result does not
depend on which process executes it.  Parallel execution therefore yields

* the same :class:`RunResult`/:class:`ClusterResult` objects,
* the same content hashes (they cover the resolved spec only), and
* the same store index (artifacts are filed in submission order by the
  parent, never by the workers)

as serial execution — only ``wall_time_s`` (per-host timing) differs.
``jobs=None``/``0``/``1`` runs serially in-process, so the default path is
byte-for-byte the pre-parallel behavior.

Workers prefer the ``fork`` start method: they inherit the parent's warmed
imports, dataset/predictor caches and hash seed, so pool startup is
milliseconds and cross-process hash identity matches the in-process runs.
``spawn`` is the portable fallback.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from .runner import RunArtifact
    from .spec import ScenarioSpec
    from .store import ArtifactStore

__all__ = [
    "run_many",
    "run_fresh_records",
    "resolve_jobs",
    "stored_artifact_for",
    "BACKENDS",
    "ReuseReport",
    "SpecExecutionError",
]

#: Execution backends ``run_many``/``run_sweep`` accept: ``"serial"`` forces
#: in-process execution, ``"pool"`` the process-pool executor (the default;
#: still serial when ``jobs`` resolves to 1), ``"fabric"`` the distributed
#: work queue over a shared spool + store (see :mod:`repro.fabric`).
BACKENDS = ("serial", "pool", "fabric")


class SpecExecutionError(RuntimeError):
    """One spec in a :func:`run_many` batch failed.

    A bare worker traceback says nothing about *which* grid point died, so
    every non-OOM execution failure is wrapped with the spec's batch index
    and name before it surfaces (OOM keeps its own type: callers dispatch on
    :class:`~repro.kvcache.capacity.OutOfMemoryError` for grey cells).
    """

    def __init__(self, index: int, name: str, message: str) -> None:
        self.index = index
        self.name = name
        self.message = message
        super().__init__(f"spec [{index}] {name!r} failed: {message}")

    def __reduce__(self):  # crosses the process-pool pickle boundary intact
        return (type(self), (self.index, self.name, self.message))


@dataclass(frozen=True)
class ReuseReport:
    """Per-run memoization outcome: how much of a batch came from the store."""

    hits: int
    executed: int
    total: int

    @classmethod
    def from_artifacts(cls, artifacts: Sequence["RunArtifact | None"]) -> "ReuseReport":
        hits = sum(1 for a in artifacts if a is not None and a.reused)
        return cls(hits=hits, executed=len(artifacts) - hits, total=len(artifacts))

    def summary(self) -> str:
        return f"reuse: {self.hits}/{self.total} hit, {self.executed} executed"


def resolve_jobs(jobs: int | None) -> int:
    """Normalize and validate a ``--jobs`` value into a worker count.

    ``None``/``0``/``1`` mean serial and ``-1`` means "all cores"; anything
    else must be a positive integer.  Garbage (floats, bools, other negative
    numbers) raises a clear :class:`ValueError` here — at parse time —
    instead of failing deep inside an executor or a fabric worker.
    """
    if jobs is None:
        return 1
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ValueError(
            f"jobs must be an integer, got {jobs!r} "
            "(use 0/1 for serial, -1 for all cores)"
        )
    if jobs == -1:
        return max(os.cpu_count() or 1, 1)
    if jobs < 0:
        raise ValueError(
            f"jobs must be a positive integer, 0/1 (serial) or -1 "
            f"(all cores); got {jobs}"
        )
    if jobs == 0:
        return 1
    return jobs


def _mp_context():
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


# --------------------------------------------------------------------- #
# Worker entry points (top-level so every start method can import them).
# --------------------------------------------------------------------- #
def _execute_payload(payload: str) -> dict[str, Any] | None:
    """One resolved-spec JSON in, one full artifact record out (or ``None``
    for an OOM layout when the payload asks for OOM tolerance)."""
    from ..kvcache.capacity import OutOfMemoryError
    from .runner import run
    from .spec import ScenarioSpec

    data = json.loads(payload)
    spec = ScenarioSpec.from_dict(data["spec"])
    try:
        return run(spec).to_record(detail=True)
    except OutOfMemoryError:
        if data["oom_to_none"]:
            return None
        raise
    except Exception as exc:
        raise SpecExecutionError(
            data.get("index", -1),
            spec.name or spec.describe(),
            f"{type(exc).__name__}: {exc}",
        ) from exc


def _execute_fresh_payload(payload: str) -> dict[str, Any]:
    """Replay worker: spec JSON in, detail-less metric record out."""
    from .runner import run
    from .spec import ScenarioSpec

    spec = ScenarioSpec.from_dict(json.loads(payload))
    return run(spec).to_record(detail=False)


def _pool_map(fn, payloads: Sequence[str], jobs: int) -> list:
    workers = min(jobs, len(payloads))
    with ProcessPoolExecutor(max_workers=workers, mp_context=_mp_context()) as pool:
        # Executor.map preserves submission order, so results (and any
        # store filing done by the caller) are deterministic.
        return list(pool.map(fn, payloads))


# --------------------------------------------------------------------- #
# The parallel executors.
# --------------------------------------------------------------------- #
def stored_artifact_for(
    store: "ArtifactStore",
    spec: "ScenarioSpec",
    stamp: Mapping[str, str] | None = None,
) -> "RunArtifact | None":
    """The stored artifact that may substitute for executing ``spec``.

    A record is a hit only when all of these hold:

    * its content hash is filed in the store,
    * its code-provenance stamp equals the current tree's (same package
      version, byte-identical ``repro`` source) — any code change misses,
    * it carries the full ``detail`` payload (lean records cannot be
      reconstructed into artifacts), and
    * it recorded no opaque overrides (its spec alone reproduced the run).

    Returns the reconstructed artifact (marked ``reused``) or ``None``.
    This predicate is shared by ``run_many(reuse=True)`` and the fabric
    worker's memo check, so both paths hit and miss identically.
    """
    from .provenance import provenance_stamp
    from .runner import RunArtifact
    from .store.canonical import content_hash

    stamp = provenance_stamp() if stamp is None else stamp
    ref = content_hash(spec)
    if ref not in store:
        return None
    record = store.get_record(ref)
    if (
        record.get("provenance") == stamp
        and "detail" in record
        and not record.get("opaque_overrides")
    ):
        artifact = RunArtifact.from_record(record)
        artifact.reused = True
        return artifact
    return None


def _reuse_lookup(
    store: "ArtifactStore", resolved: Sequence["ScenarioSpec"]
) -> dict[int, "RunArtifact"]:
    """Stored artifacts that may substitute for executing ``resolved[i]``
    (see :func:`stored_artifact_for` for the hit conditions)."""
    from .provenance import provenance_stamp
    from .store.canonical import content_hash

    stamp = provenance_stamp()
    hits: dict[int, "RunArtifact"] = {}
    for i, spec in enumerate(resolved):
        artifact = stored_artifact_for(store, spec, stamp)
        if artifact is not None:
            hits[i] = artifact
            store.session_reused_refs.append(content_hash(spec))
    return hits


def run_many(
    specs: Iterable["ScenarioSpec"],
    *,
    jobs: int | None = None,
    backend: str | None = None,
    oom_to_none: bool = False,
    store: "ArtifactStore | str | os.PathLike | None" = None,
    reuse: bool = False,
    overrides: Sequence[Mapping[str, Any]] | None = None,
    fabric_opts: Mapping[str, Any] | None = None,
) -> list["RunArtifact | None"]:
    """Execute many scenario specs on the chosen backend.

    Parameters
    ----------
    specs:
        Scenario specs to execute.  Each is resolved up front, so workers
        and the serial path see identical inputs.
    jobs:
        Worker processes (see :func:`resolve_jobs`).  Serial by default.
    backend:
        One of :data:`BACKENDS` (default ``"pool"``).  ``"fabric"`` runs
        the batch through the distributed work queue
        (:func:`repro.fabric.run_fabric`): ``jobs`` spawned local worker
        processes coordinate via a spool directory and return results
        through the shared ``store``, bit-identical to serial execution
        (only ``wall_time_s`` differs).  ``fabric_opts`` forwards extra
        keyword arguments (spool path, lease timeout, retry policy).
    oom_to_none:
        When true, a spec whose layout cannot hold its model yields ``None``
        instead of raising (fig11's grey OOM cells).
    store:
        An :class:`~repro.api.store.ArtifactStore` (or path).  Every
        executed artifact is filed under its content hash, in submission
        order, so parallel store indexes match serial ones.
    reuse:
        Turn ``store`` into a memoizer: specs whose content hash is already
        filed under a matching code-provenance stamp (see
        :func:`_reuse_lookup`) are served from the store (marked
        ``artifact.reused``) and only the misses execute.  A repeat campaign
        becomes delta computation; summarize with
        ``ReuseReport.from_artifacts(artifacts)``.
    overrides:
        Optional per-spec sweep coordinates, stamped on each returned
        artifact *before* filing so stored records keep their grid position.

    Returns the artifacts in the order the specs were given.
    """
    from ..kvcache.capacity import OutOfMemoryError
    from .runner import RunArtifact, run

    if backend is not None and backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; options: {', '.join(BACKENDS)}"
        )
    resolved = [spec.resolved() for spec in specs]
    if overrides is not None and len(overrides) != len(resolved):
        raise ValueError(
            f"got {len(overrides)} override dicts for {len(resolved)} specs"
        )
    if store is not None:
        from .store import as_store

        store = as_store(store)
    if reuse and store is None:
        raise ValueError("run_many(reuse=True) needs a store to reuse from")

    if backend == "fabric":
        return _run_many_fabric(
            resolved,
            jobs=jobs,
            oom_to_none=oom_to_none,
            store=store,
            reuse=reuse,
            overrides=overrides,
            fabric_opts=fabric_opts,
        )
    if fabric_opts:
        raise ValueError('fabric_opts only applies to backend="fabric"')

    artifacts: list[RunArtifact | None] = [None] * len(resolved)
    hits: dict[int, RunArtifact] = {}
    if reuse:
        hits = _reuse_lookup(store, resolved)
        for i, artifact in hits.items():
            artifacts[i] = artifact

    misses = [i for i in range(len(resolved)) if i not in hits]
    n_jobs = 1 if backend == "serial" else resolve_jobs(jobs)
    if n_jobs <= 1 or len(misses) <= 1:
        for i in misses:
            spec = resolved[i]
            try:
                artifacts[i] = run(spec)
            except OutOfMemoryError:
                if not oom_to_none:
                    raise
                artifacts[i] = None
            except Exception as exc:
                raise SpecExecutionError(
                    i, spec.name or spec.describe(), f"{type(exc).__name__}: {exc}"
                ) from exc
    else:
        payloads = [
            json.dumps(
                {
                    "spec": resolved[i].to_dict(),
                    "oom_to_none": oom_to_none,
                    "index": i,
                }
            )
            for i in misses
        ]
        records = _pool_map(_execute_payload, payloads, n_jobs)
        for i, record in zip(misses, records):
            artifacts[i] = (
                None if record is None else RunArtifact.from_record(record)
            )

    if overrides is not None:
        for artifact, coords in zip(artifacts, overrides):
            if artifact is not None:
                artifact.overrides = dict(coords)
    if store is not None:
        # File only what actually executed: hits already live in the store,
        # and re-putting them would churn seq/created_at for no new data.
        for i, artifact in enumerate(artifacts):
            if artifact is not None and i not in hits:
                store.put(artifact)
    return artifacts


def _run_many_fabric(
    resolved: Sequence["ScenarioSpec"],
    *,
    jobs: int | None,
    oom_to_none: bool,
    store: "ArtifactStore | None",
    reuse: bool,
    overrides: Sequence[Mapping[str, Any]] | None,
    fabric_opts: Mapping[str, Any] | None,
) -> list["RunArtifact | None"]:
    """The ``backend="fabric"`` leg of :func:`run_many`.

    Workers file executed records into the shared store themselves (the
    store is the result transport), so unlike the pool path the parent only
    does session bookkeeping here: hit/executed refs are mirrored into the
    store's session lists so CLI summaries (``N record(s) ->``,
    ``ReuseReport``) read the same for every backend.
    """
    from ..fabric import run_fabric
    from .store.canonical import content_hash

    artifacts = run_fabric(
        resolved,
        workers=resolve_jobs(jobs),
        store=store,
        reuse=reuse,
        oom_to_none=oom_to_none,
        overrides=overrides,
        **dict(fabric_opts or {}),
    )
    if store is not None:
        for artifact in artifacts:
            if artifact is None:
                continue
            ref = content_hash(artifact.spec)
            if artifact.reused:
                store.session_reused_refs.append(ref)
            else:
                store.session_refs.append(ref)
    return artifacts


def run_fresh_records(
    spec_dicts: Sequence[Mapping[str, Any]], *, jobs: int | None = None
) -> list[dict[str, Any]]:
    """Execute plain spec dicts; return detail-less records in order.

    The parallel backend of :func:`repro.api.store.replay_all`: stored
    records already carry their specs as plain data, so replaying a store is
    a pure fan-out of (spec dict -> fresh metric record).
    """
    from .runner import run
    from .spec import ScenarioSpec

    n_jobs = resolve_jobs(jobs)
    if n_jobs <= 1 or len(spec_dicts) <= 1:
        return [
            run(ScenarioSpec.from_dict(d)).to_record(detail=False)
            for d in spec_dicts
        ]
    payloads = [json.dumps(dict(d)) for d in spec_dicts]
    return _pool_map(_execute_fresh_payload, payloads, n_jobs)
