"""Declarative scenario API: one serializable spec, one ``run()``.

The spec-driven front door for the whole system::

    from repro import api

    spec = api.ScenarioSpec(
        name="hetero-slo",
        workload=api.WorkloadSpec(
            scale=0.05, arrival="poisson", rate_rps=14.0,
            slo_mix={"interactive": 0.7, "batch": 0.3},
        ),
        fleet=api.FleetSpec(fleet="l20:2,a100:2"),
        engine=api.EngineSpec(system="TD-Pipe", model="13B"),
        control=api.ControlSpec(router="jsq", autoscale=True),
    )
    artifact = api.run(spec)
    print(artifact.result.summary())
    open("scenario.json", "w").write(spec.to_json())   # a data file, not code

Everything the legacy entry points express — ``run_system``,
``run_cluster``, every ``tdpipe-bench cluster`` flag — round-trips through
this layer; those entry points are now shims that build specs.  Sweeps are
spec grids (:class:`SweepSpec`), published experiments are named builders in
the :mod:`registry <repro.api.registry>`, and ``tdpipe-bench run --spec
scenario.json`` executes any of it from disk.
"""

from .parallel import (
    BACKENDS,
    ReuseReport,
    SpecExecutionError,
    resolve_jobs,
    run_fresh_records,
    run_many,
    stored_artifact_for,
)
from .provenance import code_fingerprint, provenance_stamp
from .registry import get_scenario, register_scenario, scenario_names
from .runner import RunArtifact, load_spec, run, run_sweep
from .store import (
    DEFAULT_STORE_PATH,
    MISSING,
    ArtifactStore,
    DiffReport,
    MetricDiff,
    ReplayReport,
    Tolerance,
    as_store,
    compare_records,
    content_hash,
    diff_refs,
    replay,
    replay_all,
)
from .spec import (
    SCHEMA_VERSION,
    ControlSpec,
    EngineSpec,
    FleetSpec,
    ScenarioSpec,
    WorkloadSpec,
    parse_set_override,
    spec_from_dict,
    spec_from_json,
)
from .sweep import SweepAxis, SweepPointSpec, SweepSpec

__all__ = [
    "SCHEMA_VERSION",
    "ScenarioSpec",
    "WorkloadSpec",
    "FleetSpec",
    "EngineSpec",
    "ControlSpec",
    "SweepSpec",
    "SweepAxis",
    "SweepPointSpec",
    "RunArtifact",
    "run",
    "run_sweep",
    "run_many",
    "run_fresh_records",
    "resolve_jobs",
    "BACKENDS",
    "stored_artifact_for",
    "ReuseReport",
    "SpecExecutionError",
    "code_fingerprint",
    "provenance_stamp",
    "MISSING",
    "load_spec",
    "spec_from_dict",
    "spec_from_json",
    "parse_set_override",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "ArtifactStore",
    "as_store",
    "DEFAULT_STORE_PATH",
    "content_hash",
    "Tolerance",
    "MetricDiff",
    "ReplayReport",
    "DiffReport",
    "compare_records",
    "replay",
    "replay_all",
    "diff_refs",
]
