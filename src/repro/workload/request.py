"""Request type shared by all schedulers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from .slo import SLOClass

__all__ = ["Request"]


@dataclass(eq=False)
class Request:
    """One generative-inference request.

    Identity semantics (``eq=False``): requests are unique objects keyed by
    ``request_id``; value comparison over feature arrays is never meaningful.

    ``output_len`` is the ground-truth number of tokens the model will emit;
    schedulers must *not* read it for decisions (only the simulator does, to
    know when generation stops) — that is exactly the information asymmetry
    the paper's output-length predictor addresses.  ``features`` is the
    request representation handed to the predictor (the stand-in for the BERT
    [CLS] embedding of the prompt).
    """

    request_id: int
    prompt_len: int
    output_len: int
    features: np.ndarray = field(default_factory=lambda: np.zeros(1))
    #: Latent workload class used by the synthetic generator (hidden from
    #: schedulers; exposed for analysis/tests only).
    intent: int = 0
    #: Simulated arrival time in seconds.  0 = available at start (the
    #: paper's offline setting); see :mod:`repro.workload.arrivals`.
    arrival_time: float = 0.0
    #: Service-level objective class (TTFT/TPOT deadlines) this request was
    #: submitted under, or ``None`` for best-effort.  Routers may read it
    #: (deadline-aware policies); engines never do.
    slo: SLOClass | None = None
    #: Multi-turn chat session this request belongs to, or ``None`` for a
    #: standalone request.  Turns of one session share the id so a prefix
    #: cache (or session-affinity router) can exploit the shared context;
    #: see :mod:`repro.workload.regimes`.
    session_id: int | None = None
    #: 1-based turn number within the session (1 = the opening request).
    turn: int = 1

    def __post_init__(self) -> None:
        if self.prompt_len < 1:
            raise ValueError(f"prompt_len must be >= 1, got {self.prompt_len}")
        if self.output_len < 1:
            raise ValueError(f"output_len must be >= 1, got {self.output_len}")
        if self.turn < 1:
            raise ValueError(f"turn must be >= 1, got {self.turn}")

    @property
    def total_len(self) -> int:
        """Final context length once the request completes."""
        return self.prompt_len + self.output_len

    def __hash__(self) -> int:
        return hash(self.request_id)
