"""Per-replica workload splitting for cluster experiments.

Dynamic routing (:mod:`repro.cluster.routing`) assigns requests at their
arrival instants; these helpers instead *pre-shard* a workload — the
static-partitioning baseline a dynamic router is compared against, and the
way to drive replicas as independent single-node runs.
"""

from __future__ import annotations

from typing import Sequence

from .request import Request

__all__ = ["split_round_robin", "split_least_tokens", "static_assignment"]


def split_round_robin(requests: Sequence[Request], num_replicas: int) -> list[list[Request]]:
    """Deal requests across replicas in arrival order, one at a time.

    Preserves each shard's arrival-time ordering; with Poisson arrivals this
    thins the process, so each replica sees rate/num_replicas.
    """
    if num_replicas < 1:
        raise ValueError(f"num_replicas must be >= 1, got {num_replicas}")
    ordered = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
    shards: list[list[Request]] = [[] for _ in range(num_replicas)]
    for i, r in enumerate(ordered):
        shards[i % num_replicas].append(r)
    return shards


def split_least_tokens(requests: Sequence[Request], num_replicas: int) -> list[list[Request]]:
    """Greedy token-balanced split: each request joins the lightest shard.

    Balances total work (prompt + output tokens) rather than request counts —
    useful when the length distribution is heavy-tailed.  Deterministic: ties
    go to the lowest shard index.
    """
    if num_replicas < 1:
        raise ValueError(f"num_replicas must be >= 1, got {num_replicas}")
    ordered = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
    shards: list[list[Request]] = [[] for _ in range(num_replicas)]
    loads = [0] * num_replicas
    for r in ordered:
        i = min(range(num_replicas), key=lambda j: (loads[j], j))
        shards[i].append(r)
        loads[i] += r.total_len
    return shards


def static_assignment(shards: Sequence[Sequence[Request]]) -> dict[int, int]:
    """request_id -> replica index map from pre-split shards (for
    :class:`repro.cluster.routing.StaticRouter`)."""
    return {r.request_id: i for i, shard in enumerate(shards) for r in shard}
