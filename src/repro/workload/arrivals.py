"""Arrival processes for online-serving experiments.

The paper targets offline inference (all requests available at t=0), but the
architecture raises an obvious follow-up: how does temporal disaggregation
behave under *online* arrivals, where batching phases trade throughput for
time-to-first-token?  These helpers stamp arrival times onto request lists so
the engines (which honour ``Request.arrival_time``) can answer that.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from .request import Request

__all__ = ["with_poisson_arrivals", "with_uniform_arrivals", "with_burst_arrivals"]


def _clone_at(request: Request, t: float) -> Request:
    # `replace` keeps every other field (features, intent, slo, ...) intact.
    return replace(request, arrival_time=float(t))


def with_poisson_arrivals(
    requests: Sequence[Request], rate_rps: float, seed: int = 0
) -> list[Request]:
    """Stamp i.i.d. exponential inter-arrival gaps (Poisson process)."""
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate_rps, size=len(requests))
    times = np.cumsum(gaps)
    return [_clone_at(r, t) for r, t in zip(requests, times)]


def with_uniform_arrivals(requests: Sequence[Request], rate_rps: float) -> list[Request]:
    """Stamp evenly spaced arrivals at a fixed rate."""
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    gap = 1.0 / rate_rps
    return [_clone_at(r, (i + 1) * gap) for i, r in enumerate(requests)]


def with_burst_arrivals(
    requests: Sequence[Request],
    burst_size: int,
    burst_interval_s: float,
) -> list[Request]:
    """Arrivals in periodic bursts (batch-upload traffic patterns)."""
    if burst_size < 1:
        raise ValueError("burst_size must be >= 1")
    if burst_interval_s < 0:
        raise ValueError("burst_interval_s must be >= 0")
    return [
        _clone_at(r, (i // burst_size) * burst_interval_s) for i, r in enumerate(requests)
    ]
