"""Dataset splits mirroring the paper's evaluation protocol.

Section 4.1: from 86,612 input/output pairs, 60 % train / 20 % validation /
20 % test for the length predictor; 5,000 requests sampled for each
performance run.  We reproduce the protocol at a configurable scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .request import Request
from .sharegpt import ShareGPTSynthesizer

__all__ = ["DatasetSplits", "build_dataset", "sample_eval_requests"]


@dataclass
class DatasetSplits:
    """Train/validation/test request splits."""

    train: list[Request]
    val: list[Request]
    test: list[Request]

    @property
    def total(self) -> int:
        return len(self.train) + len(self.val) + len(self.test)


def build_dataset(
    total: int = 20_000,
    seed: int = 0,
    train_frac: float = 0.6,
    val_frac: float = 0.2,
    **synth_kwargs: object,
) -> DatasetSplits:
    """Generate a corpus and split it 60/20/20 (paper Section 4.1)."""
    if not 0 < train_frac < 1 or not 0 <= val_frac < 1 or train_frac + val_frac >= 1:
        raise ValueError("invalid split fractions")
    requests = ShareGPTSynthesizer(seed=seed, **synth_kwargs).generate(total)  # type: ignore[arg-type]
    n_train = int(total * train_frac)
    n_val = int(total * val_frac)
    return DatasetSplits(
        train=requests[:n_train],
        val=requests[n_train : n_train + n_val],
        test=requests[n_train + n_val :],
    )


def sample_eval_requests(
    splits: DatasetSplits, n: int = 5000, seed: int = 0
) -> list[Request]:
    """Randomly sample ``n`` evaluation requests from the test split.

    Sampling is with replacement when the test split is smaller than ``n``
    (scaled-down runs), without replacement otherwise, and the sampled
    requests get fresh, contiguous ids.
    """
    rng = np.random.default_rng(seed)
    pool = splits.test
    replace = n > len(pool)
    idx = rng.choice(len(pool), size=n, replace=replace)
    out = []
    for new_id, i in enumerate(idx):
        r = pool[int(i)]
        out.append(
            Request(
                request_id=new_id,
                prompt_len=r.prompt_len,
                output_len=r.output_len,
                features=r.features,
                intent=r.intent,
            )
        )
    return out
