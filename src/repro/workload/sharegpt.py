"""Synthetic ShareGPT-like workload generator.

The paper evaluates on ShareGPT V3: conversation prompts filtered to < 1024
input tokens, with model-generated outputs (86,612 pairs; 5,000 sampled per
run).  The dataset itself cannot be shipped here, so this module generates a
seeded synthetic equivalent that preserves the properties the schedulers are
sensitive to:

* heavy-tailed, highly variable input lengths (log-normal, clipped to
  [4, 1024] to mirror the paper's filtering);
* output lengths that are *unknown a priori*, drawn from a latent
  "intent" mixture (short answers, chat, long-form, …) so that lengths are
  predictable from request features only up to realistic accuracy;
* per-request feature vectors correlated with the intent — the stand-in for
  the BERT [CLS] embedding that µ-Serve's predictor consumes.

With the default parameters the mean input/output lengths are ≈230/≈250
tokens, matching ShareGPT summary statistics reported in the serving
literature, and the trained predictor in :mod:`repro.predictor` reaches the
paper's ≈0.52–0.58 per-request bin accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .request import Request

__all__ = ["IntentProfile", "ShareGPTSynthesizer", "DEFAULT_INTENTS", "generate_requests"]


@dataclass(frozen=True)
class IntentProfile:
    """One latent request class of the mixture."""

    name: str
    weight: float
    #: Median output length of the class (log-normal median = exp(mu)).
    output_median: float
    #: Log-normal sigma of the class's output lengths.
    output_sigma: float
    #: Mean shift applied to the feature embedding for this class.
    feature_loc: float


DEFAULT_INTENTS: tuple[IntentProfile, ...] = (
    IntentProfile("short-answer", weight=0.24, output_median=28.0, output_sigma=0.35, feature_loc=-2.0),
    IntentProfile("chat", weight=0.30, output_median=110.0, output_sigma=0.35, feature_loc=-0.7),
    IntentProfile("explain", weight=0.24, output_median=280.0, output_sigma=0.35, feature_loc=0.7),
    IntentProfile("long-form", weight=0.16, output_median=600.0, output_sigma=0.35, feature_loc=2.0),
    IntentProfile("max-length", weight=0.06, output_median=1100.0, output_sigma=0.25, feature_loc=3.2),
)


@dataclass
class ShareGPTSynthesizer:
    """Seeded generator of ShareGPT-like request streams.

    Parameters
    ----------
    seed:
        RNG seed; the same seed always yields the same request list.
    max_input_len:
        Upper clip for prompt lengths (the paper filters inputs < 1024).
    feature_dim:
        Dimensionality of the predictor feature vector.
    feature_noise:
        Standard deviation of the per-request feature noise.  Larger values
        make output lengths harder to predict; the default is calibrated so a
        softmax-regression predictor lands near the paper's accuracies.
    """

    seed: int = 0
    intents: tuple[IntentProfile, ...] = DEFAULT_INTENTS
    max_input_len: int = 1024
    min_input_len: int = 4
    input_median: float = 130.0
    input_sigma: float = 1.0
    max_output_len: int = 2048
    feature_dim: int = 8
    feature_noise: float = 0.9
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.intents:
            raise ValueError("at least one intent profile required")
        total = sum(p.weight for p in self.intents)
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"intent weights must sum to 1, got {total}")
        self._rng = np.random.default_rng(self.seed)
        # Fixed random directions per intent in feature space (deterministic
        # given the seed) so classes are linearly separable up to noise.
        dir_rng = np.random.default_rng(self.seed + 1)
        self._intent_dirs = dir_rng.normal(size=(len(self.intents), self.feature_dim))
        self._intent_dirs /= np.linalg.norm(self._intent_dirs, axis=1, keepdims=True)

    # ------------------------------------------------------------------ #
    def _sample_input_len(self, n: int) -> np.ndarray:
        raw = self._rng.lognormal(mean=np.log(self.input_median), sigma=self.input_sigma, size=n)
        return np.clip(raw, self.min_input_len, self.max_input_len).astype(int)

    def _sample_intents(self, n: int) -> np.ndarray:
        probs = np.array([p.weight for p in self.intents])
        return self._rng.choice(len(self.intents), size=n, p=probs)

    def _sample_output_len(self, intents: np.ndarray) -> np.ndarray:
        medians = np.array([p.output_median for p in self.intents])[intents]
        sigmas = np.array([p.output_sigma for p in self.intents])[intents]
        raw = self._rng.lognormal(mean=np.log(medians), sigma=sigmas)
        return np.clip(raw, 1, self.max_output_len).astype(int)

    def _sample_features(self, intents: np.ndarray, input_lens: np.ndarray) -> np.ndarray:
        locs = np.array([p.feature_loc for p in self.intents])[intents]
        base = self._intent_dirs[intents] * locs[:, None]
        noise = self._rng.normal(scale=self.feature_noise, size=base.shape)
        feats = base + noise
        # Prompt length is an observable, mildly informative feature.
        len_feat = (np.log(input_lens) - np.log(self.input_median))[:, None]
        return np.concatenate([feats, len_feat], axis=1)

    # ------------------------------------------------------------------ #
    def generate(self, n: int, id_offset: int = 0) -> list[Request]:
        """Generate ``n`` requests (deterministic given construction seed)."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        input_lens = self._sample_input_len(n)
        intents = self._sample_intents(n)
        output_lens = self._sample_output_len(intents)
        feats = self._sample_features(intents, input_lens)
        return [
            Request(
                request_id=id_offset + i,
                prompt_len=int(input_lens[i]),
                output_len=int(output_lens[i]),
                features=feats[i],
                intent=int(intents[i]),
            )
            for i in range(n)
        ]


def generate_requests(n: int, seed: int = 0, **kwargs: object) -> list[Request]:
    """Convenience wrapper: ``ShareGPTSynthesizer(seed, **kwargs).generate(n)``."""
    return ShareGPTSynthesizer(seed=seed, **kwargs).generate(n)  # type: ignore[arg-type]
