"""Workload substrate: requests and the synthetic ShareGPT-like generator."""

from .arrivals import with_burst_arrivals, with_poisson_arrivals, with_uniform_arrivals
from .dataset import DatasetSplits, build_dataset, sample_eval_requests
from .request import Request
from .sharding import split_least_tokens, split_round_robin, static_assignment
from .slo import (
    BATCH,
    INTERACTIVE,
    SLO_PRESETS,
    SLOClass,
    classed_poisson_arrivals,
    get_slo_class,
    parse_slo_mix,
    with_slo_mix,
)
from .sharegpt import (
    DEFAULT_INTENTS,
    IntentProfile,
    ShareGPTSynthesizer,
    generate_requests,
)
from .regimes import (
    CompiledRegime,
    RegimeSpec,
    SegmentSpec,
    SessionSpec,
    compile_regime,
    get_regime,
    regime_names,
    stamp_requests,
)

__all__ = [
    "Request",
    "IntentProfile",
    "ShareGPTSynthesizer",
    "DEFAULT_INTENTS",
    "generate_requests",
    "DatasetSplits",
    "build_dataset",
    "sample_eval_requests",
    "with_poisson_arrivals",
    "with_uniform_arrivals",
    "with_burst_arrivals",
    "split_round_robin",
    "split_least_tokens",
    "static_assignment",
    "SLOClass",
    "INTERACTIVE",
    "BATCH",
    "SLO_PRESETS",
    "get_slo_class",
    "parse_slo_mix",
    "with_slo_mix",
    "classed_poisson_arrivals",
    "RegimeSpec",
    "SegmentSpec",
    "SessionSpec",
    "CompiledRegime",
    "compile_regime",
    "stamp_requests",
    "get_regime",
    "regime_names",
]
