"""Workload substrate: requests and the synthetic ShareGPT-like generator."""

from .arrivals import with_burst_arrivals, with_poisson_arrivals, with_uniform_arrivals
from .dataset import DatasetSplits, build_dataset, sample_eval_requests
from .request import Request
from .sharding import split_least_tokens, split_round_robin, static_assignment
from .sharegpt import (
    DEFAULT_INTENTS,
    IntentProfile,
    ShareGPTSynthesizer,
    generate_requests,
)

__all__ = [
    "Request",
    "IntentProfile",
    "ShareGPTSynthesizer",
    "DEFAULT_INTENTS",
    "generate_requests",
    "DatasetSplits",
    "build_dataset",
    "sample_eval_requests",
    "with_poisson_arrivals",
    "with_uniform_arrivals",
    "with_burst_arrivals",
    "split_round_robin",
    "split_least_tokens",
    "static_assignment",
]
