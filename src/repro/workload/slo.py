"""Service-level-objective classes for online serving workloads.

Production LLM fleets rarely serve one traffic class: interactive chat wants
a tight time-to-first-token, while batch/offline traffic (summarisation jobs,
evaluation sweeps) tolerates long queues in exchange for throughput.  An
:class:`SLOClass` names a deadline pair (TTFT, TPOT) and rides on
:attr:`repro.workload.request.Request.slo`, where deadline-aware routers and
the per-class attainment metrics (:mod:`repro.metrics.slo`) can see it.

Deadlines are *arrival-relative* seconds; ``math.inf`` means "no deadline on
this axis".  Classes are frozen value objects so they hash/compare cleanly
when used as grouping keys.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Mapping, Sequence

import numpy as np

from .request import Request

__all__ = [
    "SLOClass",
    "INTERACTIVE",
    "BATCH",
    "SLO_PRESETS",
    "get_slo_class",
    "parse_mix_string",
    "parse_slo_mix",
    "with_slo_mix",
    "classed_poisson_arrivals",
]


@dataclass(frozen=True)
class SLOClass:
    """One traffic class: a name and its latency deadlines."""

    name: str
    #: Time-to-first-token deadline (seconds from arrival).
    ttft_deadline_s: float = math.inf
    #: Time-per-output-token deadline (seconds per token, steady state).
    tpot_deadline_s: float = math.inf

    def __post_init__(self) -> None:
        if self.ttft_deadline_s <= 0 or self.tpot_deadline_s <= 0:
            raise ValueError(f"deadlines must be positive, got {self}")

    def met(self, ttft_s: float, tpot_s: float) -> bool:
        """Whether a finished request with these latencies attained the SLO."""
        return ttft_s <= self.ttft_deadline_s and tpot_s <= self.tpot_deadline_s


#: Chat-style traffic: a human is watching the first token render.
INTERACTIVE = SLOClass("interactive", ttft_deadline_s=8.0, tpot_deadline_s=0.3)

#: Throughput-oriented background jobs: generous deadlines, never dropped.
BATCH = SLOClass("batch", ttft_deadline_s=60.0, tpot_deadline_s=2.0)

SLO_PRESETS: dict[str, SLOClass] = {c.name: c for c in (INTERACTIVE, BATCH)}


def get_slo_class(name: str) -> SLOClass:
    """Look up an SLO class preset by name."""
    try:
        return SLO_PRESETS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown SLO class {name!r}; presets: {sorted(SLO_PRESETS)}"
        ) from None


#: How far from 1.0 a mix's weight sum may drift (float-literal slack, e.g.
#: ``0.33 + 0.33 + 0.34``) before parsing rejects it as a probable typo.
MIX_SUM_TOLERANCE = 1e-3


def parse_mix_string(spec: str) -> dict[str, float]:
    """Parse the CLI mix form ``"interactive:0.7,batch:0.3"`` into a dict.

    Purely syntactic (no class-name or weight-sum validation — that is
    :func:`parse_slo_mix`'s job), but strict about shape: duplicate class
    names and malformed weights raise.  A bare name means weight 1.
    """
    pairs: dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight = part.partition(":")
        name = name.strip()
        if name in pairs:
            raise ValueError(f"duplicate SLO class {name!r} in mix {spec!r}")
        if weight:
            try:
                pairs[name] = float(weight)
            except ValueError:
                raise ValueError(
                    f"malformed SLO mix weight {weight!r} for class "
                    f"{name!r} in {spec!r}"
                ) from None
        else:
            pairs[name] = 1.0
    return pairs


def parse_slo_mix(spec: str | Mapping[str, float]) -> dict[SLOClass, float]:
    """Parse ``"interactive:0.7,batch:0.3"`` into validated class weights.

    Accepts a mapping (class name -> weight) or the CLI string form.  Parsing
    is strict: unknown class names, duplicate entries, malformed or negative
    weights, and weights that do not sum to ~1 all raise — a mix like
    ``"interactive:7,batch:3"`` used to be silently renormalized, which
    masked typos (was ``7`` meant as ``0.7`` or as seven times ``batch``?).
    A single bare class name (``"interactive"``) defaults to weight 1.
    """
    if isinstance(spec, str):
        spec = parse_mix_string(spec)
    if not spec:
        raise ValueError("empty SLO mix")
    weights = {get_slo_class(name): float(w) for name, w in spec.items()}
    if len(weights) != len(spec):
        raise ValueError(f"duplicate SLO classes in mix {dict(spec)}")
    for name, w in spec.items():
        if float(w) < 0:
            raise ValueError(
                f"SLO mix weight for {name!r} must be non-negative, got {w}"
            )
    total = sum(weights.values())
    if abs(total - 1.0) > MIX_SUM_TOLERANCE:
        raise ValueError(
            f"SLO mix weights must sum to 1 (got {total:g} from {dict(spec)}); "
            "renormalizing silently would hide typos — spell the mix out, "
            'e.g. "interactive:0.7,batch:0.3"'
        )
    # Remove the residual float slack so downstream probability draws see an
    # exact distribution.  This is not silent renormalization: anything
    # beyond MIX_SUM_TOLERANCE was rejected above.
    return {cls: w / total for cls, w in weights.items()}


def with_slo_mix(
    requests: Sequence[Request],
    mix: str | Mapping[str, float],
    seed: int = 0,
) -> list[Request]:
    """Stamp each request with an SLO class drawn from ``mix`` (deterministic).

    Arrival times and every other field are preserved; requests are returned
    as fresh copies so the input list is never mutated.
    """
    weights = parse_slo_mix(mix)
    classes = sorted(weights, key=lambda c: c.name)
    probs = np.array([weights[c] for c in classes])
    rng = np.random.default_rng(seed)
    draws = rng.choice(len(classes), size=len(requests), p=probs)
    return [replace(r, slo=classes[d]) for r, d in zip(requests, draws)]


def classed_poisson_arrivals(
    requests: Sequence[Request],
    mix: str | Mapping[str, float],
    rates_rps: Mapping[str, float],
    seed: int = 0,
) -> list[Request]:
    """Per-class arrival generator: each SLO class is its own Poisson stream.

    Requests are first assigned classes from ``mix``, then each class's
    subsequence is stamped with an independent Poisson process at
    ``rates_rps[class_name]`` (req/s).  The merged list is returned sorted by
    arrival time — interactive traffic can trickle steadily while batch
    traffic floods in at a different rate.
    """
    stamped = with_slo_mix(requests, mix, seed=seed)
    by_class: dict[SLOClass, list[Request]] = {}
    for r in stamped:
        by_class.setdefault(r.slo, []).append(r)
    out: list[Request] = []
    for i, (cls, members) in enumerate(sorted(by_class.items(), key=lambda kv: kv[0].name)):
        try:
            rate = float(rates_rps[cls.name])
        except KeyError:
            raise KeyError(f"no arrival rate given for SLO class {cls.name!r}") from None
        if rate <= 0:
            raise ValueError(f"rate for {cls.name!r} must be positive, got {rate}")
        rng = np.random.default_rng(seed + 7919 * (i + 1))
        times = np.cumsum(rng.exponential(scale=1.0 / rate, size=len(members)))
        out.extend(replace(r, arrival_time=float(t)) for r, t in zip(members, times))
    out.sort(key=lambda r: (r.arrival_time, r.request_id))
    return out
