"""Named regime presets: the traffic shapes experiments compare across.

Presets are builder functions so every call returns a fresh, immutable
:class:`RegimeSpec`; ``duration_scale`` shrinks or stretches every segment
uniformly (rates are untouched, so expected arrivals scale linearly) —
CI smoke runs use ``duration_scale=0.05`` of the same shape the README
plots at full length.
"""

from __future__ import annotations

from typing import Any, Callable

from .spec import RegimeSpec, SegmentSpec, SessionSpec

__all__ = ["REGIME_PRESETS", "regime_names", "get_regime", "preset_dict"]


def _diurnal() -> RegimeSpec:
    """A compressed day: quiet night, morning ramp, chatty midday, drain."""
    return RegimeSpec(
        name="diurnal",
        segments=(
            SegmentSpec(
                name="night",
                duration_s=150.0,
                kind="constant",
                rate_rps=0.5,
                slo_mix={"interactive": 0.3, "batch": 0.7},
            ),
            SegmentSpec(
                name="morning-ramp",
                duration_s=120.0,
                kind="ramp",
                start_rps=0.5,
                end_rps=3.0,
                slo_mix={"interactive": 0.7, "batch": 0.3},
            ),
            SegmentSpec(
                name="midday",
                duration_s=180.0,
                kind="constant",
                rate_rps=3.0,
                slo_mix={"interactive": 0.8, "batch": 0.2},
                session=SessionSpec(
                    followup_prob=0.35, max_turns=4, mean_think_time_s=20.0
                ),
            ),
            SegmentSpec(
                name="evening-drain",
                duration_s=150.0,
                kind="ramp",
                start_rps=3.0,
                end_rps=1.0,
                slo_mix={"interactive": 0.5, "batch": 0.5},
            ),
        ),
    )


def _ramp_spike() -> RegimeSpec:
    """A product-launch shape: steady, fast ramp, sustained peak, drain."""
    return RegimeSpec(
        name="ramp-spike",
        segments=(
            SegmentSpec(
                name="steady",
                duration_s=120.0,
                kind="constant",
                rate_rps=1.0,
                slo_mix={"interactive": 0.6, "batch": 0.4},
            ),
            SegmentSpec(
                name="surge",
                duration_s=90.0,
                kind="ramp",
                start_rps=1.0,
                end_rps=6.0,
                slo_mix={"interactive": 0.8, "batch": 0.2},
            ),
            SegmentSpec(
                name="peak",
                duration_s=60.0,
                kind="constant",
                rate_rps=6.0,
                slo_mix={"interactive": 0.8, "batch": 0.2},
            ),
            SegmentSpec(
                name="drain",
                duration_s=90.0,
                kind="ramp",
                start_rps=6.0,
                end_rps=1.0,
                slo_mix={"interactive": 0.6, "batch": 0.4},
            ),
        ),
    )


def _flash_crowd() -> RegimeSpec:
    """A viral-moment shape: calm, an instantaneous crowd, recovery."""
    return RegimeSpec(
        name="flash-crowd",
        segments=(
            SegmentSpec(
                name="calm",
                duration_s=120.0,
                kind="constant",
                rate_rps=1.5,
                slo_mix={"interactive": 0.5, "batch": 0.5},
            ),
            SegmentSpec(
                name="flash",
                duration_s=120.0,
                kind="flash",
                rate_rps=1.5,
                peak_rps=12.0,
                slo_mix={"interactive": 0.9, "batch": 0.1},
                session=SessionSpec(
                    followup_prob=0.25, max_turns=3, mean_think_time_s=15.0
                ),
            ),
            SegmentSpec(
                name="recovery",
                duration_s=120.0,
                kind="constant",
                rate_rps=1.5,
                slo_mix={"interactive": 0.5, "batch": 0.5},
            ),
        ),
    )


REGIME_PRESETS: dict[str, Callable[[], RegimeSpec]] = {
    "diurnal": _diurnal,
    "ramp-spike": _ramp_spike,
    "flash-crowd": _flash_crowd,
}


def regime_names() -> list[str]:
    return sorted(REGIME_PRESETS)


def get_regime(name: str, duration_scale: float = 1.0) -> RegimeSpec:
    """Build a preset regime, optionally scaling every duration uniformly."""
    try:
        regime = REGIME_PRESETS[name]()
    except KeyError:
        raise KeyError(
            f"unknown regime preset {name!r}; presets: {regime_names()}"
        ) from None
    if duration_scale == 1.0:
        return regime
    if duration_scale <= 0:
        raise ValueError(f"duration_scale must be positive, got {duration_scale}")
    scaled = tuple(
        SegmentSpec(
            **{
                **seg.to_dict(),
                "duration_s": seg.duration_s * duration_scale,
                "session": seg.session,
                "decay_s": (
                    seg.decay_s * duration_scale if seg.decay_s is not None else None
                ),
            }
        )
        for seg in regime.segments
    )
    return RegimeSpec(name=regime.name, segments=scaled)


def preset_dict(name: str, duration_scale: float = 1.0) -> dict[str, Any]:
    """The plain-data form of a preset (for embedding in a ``WorkloadSpec``)."""
    return get_regime(name, duration_scale).to_dict()
