"""Declarative traffic-timeline regimes: spec, evaluator, presets.

See :mod:`repro.workload.regimes.spec` for the DSL and
:mod:`repro.workload.regimes.evaluator` for the determinism contract.
"""

from .evaluator import (
    CompiledRegime,
    CompiledSegment,
    ScheduledArrival,
    compile_regime,
    segment_rng,
    stamp_requests,
)
from .presets import REGIME_PRESETS, get_regime, preset_dict, regime_names
from .spec import SEGMENT_KINDS, RegimeSpec, SegmentSpec, SessionSpec

__all__ = [
    "SEGMENT_KINDS",
    "SessionSpec",
    "SegmentSpec",
    "RegimeSpec",
    "ScheduledArrival",
    "CompiledSegment",
    "CompiledRegime",
    "segment_rng",
    "compile_regime",
    "stamp_requests",
    "REGIME_PRESETS",
    "regime_names",
    "get_regime",
    "preset_dict",
]
