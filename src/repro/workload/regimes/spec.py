"""Declarative traffic-timeline specs: named segments with shaped rates.

A :class:`RegimeSpec` is an ordered list of named :class:`SegmentSpec`
entries — "quiet night, morning ramp, lunch spike, flash crowd" as data.
Each segment names a duration, an arrival shape (``constant`` | ``ramp`` |
``flash``), per-segment rate parameters, an optional SLO mix and an optional
:class:`SessionSpec` (multi-turn chat follow-ups).  Like
:class:`~repro.api.spec.ScenarioSpec`, regimes are frozen value objects with
strict construction (unknown fields, irrelevant-parameter combinations and
malformed values raise at build time) and an exact JSON round-trip
(``from_dict(to_dict(x)) == x``), so a regime can ride inside a
``WorkloadSpec`` and be recorded, replayed and content-hashed unchanged.

Rate shapes
-----------
``constant``
    ``rate_rps`` requests/s for the whole segment.
``ramp``
    Linear interpolation from ``start_rps`` at the segment start to
    ``end_rps`` at the segment end (diurnal rises and drains).
``flash``
    A flash crowd: an instantaneous jump to ``peak_rps`` at the segment
    start, decaying exponentially back toward the ``rate_rps`` baseline with
    time constant ``decay_s`` (default: a quarter of the segment).
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, fields
from typing import Any, Mapping

from ..slo import parse_mix_string, parse_slo_mix

__all__ = ["SEGMENT_KINDS", "SessionSpec", "SegmentSpec", "RegimeSpec"]

SEGMENT_KINDS = ("constant", "ramp", "flash")

#: Rate parameters each segment kind actually consumes — anything else set
#: on the segment is rejected so a knob that would be silently ignored
#: fails loudly instead (mirrors the spec API's policy-key strictness).
_KIND_RATE_FIELDS: dict[str, frozenset[str]] = {
    "constant": frozenset({"rate_rps"}),
    "ramp": frozenset({"start_rps", "end_rps"}),
    "flash": frozenset({"rate_rps", "peak_rps", "decay_s"}),
}

_RATE_FIELDS = ("rate_rps", "start_rps", "end_rps", "peak_rps", "decay_s")


def _reject_unknown(cls: type, data: Mapping[str, Any], where: str) -> None:
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"unknown field(s) {unknown} in {where}; known fields: {sorted(known)}"
        )


def _require_mapping(data: Any, where: str) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise ValueError(f"{where} must be a mapping, got {type(data).__name__}")
    return data


@dataclass(frozen=True)
class SessionSpec:
    """Multi-turn chat behaviour for one segment's arrivals.

    Each base arrival opens a session; after every turn a follow-up request
    is spawned with probability ``followup_prob`` (a geometric chain capped
    at ``max_turns`` total turns).  Follow-ups arrive an exponential think
    time (mean ``mean_think_time_s``) after the previous turn and share the
    session id — the open-loop stand-in for a user reading the answer and
    replying, which a prefix cache can later exploit.
    """

    followup_prob: float = 0.0
    max_turns: int = 1
    mean_think_time_s: float = 30.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.followup_prob < 1.0:
            raise ValueError(
                f"followup_prob must be in [0, 1), got {self.followup_prob}"
            )
        if self.max_turns < 1:
            raise ValueError(f"max_turns must be >= 1, got {self.max_turns}")
        if self.followup_prob > 0 and self.max_turns < 2:
            raise ValueError(
                "followup_prob > 0 needs max_turns >= 2 (follow-ups must be "
                "able to happen)"
            )
        if self.mean_think_time_s <= 0:
            raise ValueError(
                f"mean_think_time_s must be positive, got {self.mean_think_time_s}"
            )

    @property
    def expected_turns(self) -> float:
        """Expected total turns per session (geometric chain, capped)."""
        return sum(self.followup_prob**k for k in range(self.max_turns))

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SessionSpec":
        _reject_unknown(cls, _require_mapping(data, "session"), "session")
        return cls(**data)


@dataclass(frozen=True)
class SegmentSpec:
    """One named stretch of the traffic timeline."""

    name: str
    duration_s: float
    kind: str = "constant"
    #: ``constant``: the rate; ``flash``: the baseline the crowd decays to.
    rate_rps: float | None = None
    #: ``ramp`` endpoints.
    start_rps: float | None = None
    end_rps: float | None = None
    #: ``flash``: the instantaneous peak at the segment start.
    peak_rps: float | None = None
    #: ``flash``: exponential decay time constant (default duration/4).
    decay_s: float | None = None
    #: Per-segment SLO class mix (falls back to the workload-level mix).
    slo_mix: dict[str, float] | None = None
    session: SessionSpec | None = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"segment needs a non-empty name, got {self.name!r}")
        if not self.duration_s > 0:
            raise ValueError(
                f"segment {self.name!r} duration_s must be positive, "
                f"got {self.duration_s}"
            )
        if self.kind not in SEGMENT_KINDS:
            raise ValueError(
                f"unknown segment kind {self.kind!r} in segment {self.name!r}; "
                f"options: {SEGMENT_KINDS}"
            )
        allowed = _KIND_RATE_FIELDS[self.kind]
        stray = sorted(
            f for f in _RATE_FIELDS
            if f not in allowed and getattr(self, f) is not None
        )
        if stray:
            raise ValueError(
                f"segment {self.name!r} ({self.kind}) does not take {stray}; "
                f"allowed rate fields: {sorted(allowed)}"
            )
        if self.kind == "constant":
            if self.rate_rps is None or self.rate_rps <= 0:
                raise ValueError(
                    f"constant segment {self.name!r} needs a positive "
                    f"rate_rps, got {self.rate_rps}"
                )
        elif self.kind == "ramp":
            for field_name in ("start_rps", "end_rps"):
                value = getattr(self, field_name)
                if value is None or value < 0:
                    raise ValueError(
                        f"ramp segment {self.name!r} needs a non-negative "
                        f"{field_name}, got {value}"
                    )
            if self.start_rps == 0 and self.end_rps == 0:
                raise ValueError(
                    f"ramp segment {self.name!r} has zero rate at both ends"
                )
        else:  # flash
            if self.rate_rps is None or self.rate_rps < 0:
                raise ValueError(
                    f"flash segment {self.name!r} needs a non-negative "
                    f"baseline rate_rps, got {self.rate_rps}"
                )
            if self.peak_rps is None or self.peak_rps <= self.rate_rps:
                raise ValueError(
                    f"flash segment {self.name!r} needs peak_rps above its "
                    f"baseline {self.rate_rps}, got {self.peak_rps}"
                )
            if self.decay_s is not None and self.decay_s <= 0:
                raise ValueError(
                    f"flash segment {self.name!r} decay_s must be positive, "
                    f"got {self.decay_s}"
                )
        for field_name in _RATE_FIELDS + ("duration_s",):
            value = getattr(self, field_name)
            if value is not None and not math.isfinite(value):
                raise ValueError(
                    f"segment {self.name!r} {field_name} must be finite, "
                    f"got {value}"
                )
        if self.slo_mix is not None:
            if isinstance(self.slo_mix, str):
                object.__setattr__(self, "slo_mix", parse_mix_string(self.slo_mix))
            parse_slo_mix(self.slo_mix)  # raises on bad classes/weights/sums

    # -- rate shape ----------------------------------------------------- #
    @property
    def flash_decay_s(self) -> float:
        """Effective flash decay constant (defaulted from the duration)."""
        return self.decay_s if self.decay_s is not None else self.duration_s / 4.0

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at ``t`` seconds into the segment."""
        if self.kind == "constant":
            return float(self.rate_rps)
        if self.kind == "ramp":
            frac = min(max(t / self.duration_s, 0.0), 1.0)
            return float(self.start_rps + (self.end_rps - self.start_rps) * frac)
        return float(
            self.rate_rps
            + (self.peak_rps - self.rate_rps) * math.exp(-t / self.flash_decay_s)
        )

    @property
    def peak_rate(self) -> float:
        """The segment's rate upper bound (the thinning majorant)."""
        if self.kind == "constant":
            return float(self.rate_rps)
        if self.kind == "ramp":
            return float(max(self.start_rps, self.end_rps))
        return float(self.peak_rps)

    @property
    def expected_base_arrivals(self) -> float:
        """Analytic integral of the rate over the segment (turn-1 arrivals)."""
        d = self.duration_s
        if self.kind == "constant":
            return self.rate_rps * d
        if self.kind == "ramp":
            return (self.start_rps + self.end_rps) / 2.0 * d
        tau = self.flash_decay_s
        return self.rate_rps * d + (self.peak_rps - self.rate_rps) * tau * (
            1.0 - math.exp(-d / tau)
        )

    @property
    def expected_arrivals(self) -> float:
        """Expected arrivals including session follow-up turns."""
        turns = self.session.expected_turns if self.session is not None else 1.0
        return self.expected_base_arrivals * turns

    # -- serialization --------------------------------------------------- #
    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SegmentSpec":
        data = dict(_require_mapping(data, "segment"))
        _reject_unknown(cls, data, f"segment {data.get('name', '?')!r}")
        if data.get("session") is not None and not isinstance(
            data["session"], SessionSpec
        ):
            data["session"] = SessionSpec.from_dict(data["session"])
        return cls(**data)


@dataclass(frozen=True)
class RegimeSpec:
    """An ordered traffic timeline of named segments."""

    segments: tuple[SegmentSpec, ...]
    name: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.segments, tuple):
            object.__setattr__(self, "segments", tuple(self.segments))
        if not self.segments:
            raise ValueError("a regime needs at least one segment")
        names = [s.name for s in self.segments]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise ValueError(
                f"duplicate segment name(s) {dupes}; segment names are the "
                "stable per-segment RNG keys and must be unique"
            )

    @property
    def total_duration_s(self) -> float:
        return sum(s.duration_s for s in self.segments)

    @property
    def expected_arrivals(self) -> float:
        return sum(s.expected_arrivals for s in self.segments)

    def windows(self) -> list[tuple[str, float, float]]:
        """``(name, start, end)`` absolute time window per segment."""
        out, t = [], 0.0
        for seg in self.segments:
            out.append((seg.name, t, t + seg.duration_s))
            t += seg.duration_s
        return out

    # -- serialization --------------------------------------------------- #
    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (all fields, fully explicit)."""
        return dataclasses.asdict(self)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RegimeSpec":
        """Strict inverse of :meth:`to_dict`: unknown fields raise."""
        data = dict(_require_mapping(data, "regime"))
        _reject_unknown(cls, data, "regime")
        raw = data.get("segments")
        if raw is None:
            raise ValueError('regime needs a "segments" list')
        if not isinstance(raw, (list, tuple)):
            raise ValueError(
                f"regime segments must be a list, got {type(raw).__name__}"
            )
        data["segments"] = tuple(
            seg if isinstance(seg, SegmentSpec) else SegmentSpec.from_dict(seg)
            for seg in raw
        )
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "RegimeSpec":
        return cls.from_dict(json.loads(text))

    def describe(self) -> str:
        """One-line human summary (CLI/`ScenarioSpec.describe` embedding)."""
        label = self.name or "regime"
        return (
            f"{label}({len(self.segments)} segments, "
            f"{self.total_duration_s:g}s)"
        )
