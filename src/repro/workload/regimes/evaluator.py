"""Compile a :class:`RegimeSpec` into a deterministic arrival schedule.

The evaluator is a pure function of ``(regime, seed)``: it draws each
segment's arrivals from its own named RNG streams and returns a fully
materialized, time-sorted schedule.  Purity is the determinism story — the
same regime dict and seed produce a bit-identical schedule in-process,
across processes (``jobs=N``), and across replay, with no global state.

Arrivals are a piecewise non-homogeneous Poisson process realized by
thinning: per segment, candidates are drawn from a homogeneous process at
the segment's peak rate (the majorant) and kept with probability
``rate(t) / peak``.  ``constant`` segments degenerate to ordinary Poisson;
``ramp`` and ``flash`` get their shapes from the acceptance test alone, so
one code path covers all kinds.

Per-segment RNG streams are keyed by the segment **name**, not its index:
``default_rng([seed, sha256(name), stream])``.  Inserting, removing or
reordering segments therefore never reshuffles another segment's draws —
a renamed timeline keeps every unrenamed segment's arrivals at the same
offsets within its window.  (This is why :class:`RegimeSpec` requires
unique segment names.)

Sessions: when a segment carries a :class:`SessionSpec`, each thinned
arrival opens a session and spawns follow-up turns via a geometric chain,
each turn an exponential think time after the previous one.  Follow-ups
share a ``session_id``, inherit the opening turn's SLO class, and may land
past their segment's end (a user who started chatting during the lunch
spike keeps chatting after it) — only turn-1 arrivals are guaranteed to
fall inside the segment window.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from ..request import Request
from ..slo import SLOClass, parse_slo_mix
from .spec import RegimeSpec, SegmentSpec

__all__ = [
    "ScheduledArrival",
    "CompiledSegment",
    "CompiledRegime",
    "segment_rng",
    "compile_regime",
    "stamp_requests",
]

#: Stream indices under one segment's RNG key.
_STREAM_ARRIVALS = 0
_STREAM_SLO = 1
_STREAM_SESSIONS = 2


def _name_key(name: str) -> int:
    """Stable 64-bit key for a segment name (never builtin ``hash``: that
    varies with PYTHONHASHSEED and would break cross-process determinism)."""
    return int.from_bytes(hashlib.sha256(name.encode("utf-8")).digest()[:8], "big")


def segment_rng(seed: int, name: str, stream: int) -> np.random.Generator:
    """The RNG for one (seed, segment-name, stream) triple."""
    return np.random.default_rng([int(seed), _name_key(name), int(stream)])


def _rates(seg: SegmentSpec, t: np.ndarray) -> np.ndarray:
    """Vectorized ``seg.rate_at`` over segment-local times."""
    if seg.kind == "constant":
        return np.full_like(t, float(seg.rate_rps))
    if seg.kind == "ramp":
        frac = np.clip(t / seg.duration_s, 0.0, 1.0)
        return seg.start_rps + (seg.end_rps - seg.start_rps) * frac
    return seg.rate_rps + (seg.peak_rps - seg.rate_rps) * np.exp(
        -t / seg.flash_decay_s
    )


@dataclass(frozen=True)
class ScheduledArrival:
    """One scheduled request slot in the compiled timeline."""

    time: float
    #: Name of the segment that generated this arrival (follow-up turns keep
    #: their opening segment's name even when they land past its end).
    segment: str
    slo: SLOClass | None = None
    session_id: int | None = None
    turn: int = 1


@dataclass(frozen=True)
class CompiledSegment:
    """Realized statistics for one segment of a compiled regime."""

    name: str
    kind: str
    start_s: float
    end_s: float
    #: Analytic expectation (turn-1 arrivals only; the thinning target).
    expected_base_arrivals: float
    #: Thinned turn-1 arrivals actually drawn.
    base_arrivals: int
    #: Including session follow-up turns.
    total_arrivals: int
    #: Number of multi-turn sessions opened in this segment.
    sessions: int

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def expected_rate_rps(self) -> float:
        return self.expected_base_arrivals / self.duration_s

    @property
    def realized_rate_rps(self) -> float:
        """Realized turn-1 rate (what the thinning actually produced)."""
        return self.base_arrivals / self.duration_s


@dataclass(frozen=True)
class CompiledRegime:
    """A materialized, time-sorted arrival schedule for one seed."""

    regime: RegimeSpec
    seed: int
    segments: tuple[CompiledSegment, ...]
    entries: tuple[ScheduledArrival, ...]

    @property
    def num_requests(self) -> int:
        return len(self.entries)

    @property
    def num_sessions(self) -> int:
        return sum(s.sessions for s in self.segments)


def _compile_segment(
    seg: SegmentSpec,
    start_s: float,
    seed: int,
    default_slo_mix: dict[str, float] | str | None,
) -> tuple[CompiledSegment, list[ScheduledArrival]]:
    d = seg.duration_s
    lam_max = seg.peak_rate

    # Thinning: homogeneous candidates at the majorant rate, accepted with
    # probability rate(t)/lam_max.  Candidate times are sorted before the
    # acceptance draw so the kept set is already non-decreasing.
    rng = segment_rng(seed, seg.name, _STREAM_ARRIVALS)
    n_cand = int(rng.poisson(lam_max * d))
    t_local = np.sort(rng.uniform(0.0, d, size=n_cand))
    accept = rng.uniform(0.0, lam_max, size=n_cand) < _rates(seg, t_local)
    base = t_local[accept]

    # Per-segment SLO draw (falls back to the workload-level mix; both may
    # be absent, in which case requests stay best-effort).
    mix = seg.slo_mix if seg.slo_mix is not None else default_slo_mix
    if mix is not None and len(base):
        weights = parse_slo_mix(mix)
        classes = sorted(weights, key=lambda c: c.name)
        probs = np.array([weights[c] for c in classes])
        slo_rng = segment_rng(seed, seg.name, _STREAM_SLO)
        draws = slo_rng.choice(len(classes), size=len(base), p=probs)
        slos: list[SLOClass | None] = [classes[k] for k in draws]
    else:
        slos = [None] * len(base)

    entries: list[ScheduledArrival] = []
    sessions = 0
    sess_rng = segment_rng(seed, seg.name, _STREAM_SESSIONS)
    for t0, slo in zip(base, slos):
        t0_abs = start_s + float(t0)
        if seg.session is None or seg.session.followup_prob == 0.0:
            entries.append(ScheduledArrival(t0_abs, seg.name, slo))
            continue
        # Geometric follow-up chain: one exponential think time per turn.
        # Draw order is fixed (continue?, then think time) so the stream is
        # reproducible regardless of how many turns each session gets.
        times = [t0_abs]
        while len(times) < seg.session.max_turns:
            if sess_rng.uniform() >= seg.session.followup_prob:
                break
            times.append(
                times[-1] + sess_rng.exponential(seg.session.mean_think_time_s)
            )
        if len(times) == 1:
            entries.append(ScheduledArrival(t0_abs, seg.name, slo))
            continue
        sessions += 1
        # Session ids are provisional here; compile_regime renumbers them
        # globally in time order so ids are stable and compact.
        for turn, t in enumerate(times, start=1):
            entries.append(
                ScheduledArrival(t, seg.name, slo, session_id=-sessions, turn=turn)
            )

    compiled = CompiledSegment(
        name=seg.name,
        kind=seg.kind,
        start_s=start_s,
        end_s=start_s + d,
        expected_base_arrivals=seg.expected_base_arrivals,
        base_arrivals=int(len(base)),
        total_arrivals=len(entries),
        sessions=sessions,
    )
    return compiled, entries


def compile_regime(
    regime: RegimeSpec,
    seed: int = 0,
    default_slo_mix: dict[str, float] | str | None = None,
) -> CompiledRegime:
    """Materialize the regime's arrival schedule for one seed.

    ``default_slo_mix`` is the workload-level mix; segments without their
    own ``slo_mix`` fall back to it.
    """
    compiled_segments: list[CompiledSegment] = []
    all_entries: list[ScheduledArrival] = []
    session_key: dict[tuple[str, int], list[ScheduledArrival]] = {}
    start = 0.0
    for seg in regime.segments:
        cseg, entries = _compile_segment(seg, start, seed, default_slo_mix)
        compiled_segments.append(cseg)
        for e in entries:
            all_entries.append(e)
            if e.session_id is not None:
                session_key.setdefault((seg.name, e.session_id), []).append(e)
        start += seg.duration_s

    # Renumber sessions globally, ordered by each session's opening time, so
    # ids are compact positive ints independent of segment iteration detail.
    renumbered: dict[int, int] = {}
    for new_id, (key, turns) in enumerate(
        sorted(session_key.items(), key=lambda kv: min(t.time for t in kv[1])),
        start=1,
    ):
        for e in turns:
            renumbered[id(e)] = new_id
    final = [
        replace(e, session_id=renumbered[id(e)]) if e.session_id is not None else e
        for e in all_entries
    ]
    final.sort(key=lambda e: (e.time, e.segment, e.session_id or 0, e.turn))
    return CompiledRegime(
        regime=regime,
        seed=seed,
        segments=tuple(compiled_segments),
        entries=tuple(final),
    )


def stamp_requests(
    requests: Sequence[Request], compiled: CompiledRegime
) -> list[Request]:
    """Clone ``requests`` onto the compiled schedule, one per entry.

    Callers must supply exactly ``compiled.num_requests`` requests (the
    regime — not a ``num_requests`` knob — decides how much traffic there
    is); arrival time, SLO class, session id and turn are stamped, all
    other fields (features, lengths, intent) are preserved.
    """
    if len(requests) != compiled.num_requests:
        raise ValueError(
            f"regime schedule has {compiled.num_requests} slots but "
            f"{len(requests)} requests were supplied"
        )
    return [
        replace(
            r,
            arrival_time=e.time,
            slo=e.slo,
            session_id=e.session_id,
            turn=e.turn,
        )
        for r, e in zip(requests, compiled.entries)
    ]
