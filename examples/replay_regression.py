#!/usr/bin/env python
"""Record -> replay -> diff: the artifact store as a perf regression gate.

Walks the full round trip the store exists for:

1. **record** — run the registered ``cluster-hetero`` router sweep and file
   every grid point in a content-addressed :class:`repro.api.ArtifactStore`
   (key = SHA-256 of the canonicalized resolved spec; a human-readable
   ``index.json`` maps names to hashes).
2. **round-trip** — every stored record reconstructs, via
   ``RunArtifact.from_record``, an object *equal* to the one that ran.
3. **replay** — re-execute each stored spec on the current code and
   structurally diff fresh metrics against the record.  The simulator is
   deterministic, so unchanged code replays with **zero drift**; after a
   perf change, the drift report *is* the regression/improvement summary.
4. **diff** — compare two refs directly (here: two routers on the same
   workload), the "did this PR change the numbers?" primitive.

The same workflow from the CLI::

    tdpipe-bench record cluster-hetero --set workload.scale=0.02 --store tdpipe-store
    tdpipe-bench replay --store tdpipe-store --strict
    tdpipe-bench diff jsq-ref rr-ref --store tdpipe-store

Run:
    PYTHONPATH=src python examples/replay_regression.py
"""

import tempfile
from pathlib import Path

from repro import api

#: Quick-run scale (the CI replay-smoke job uses the same setting).
SCALE = 0.02


def main() -> None:
    store = api.ArtifactStore(Path(tempfile.mkdtemp(prefix="tdpipe-store-")))

    # 1. Record: the registered experiment becomes four content-addressed
    # records, one per router in the sweep.
    sweep = api.get_scenario("cluster-hetero", scale_factor=SCALE)
    api.run_sweep(sweep, store=store)
    print(f"recorded {len(store)} scenarios -> {store.root}")
    for ref, entry in store.entries():
        print(f"  {api.store.short_ref(ref)}  {entry['describe']}")

    # 2. Round-trip: every record reconstructs to an equal artifact.
    for ref in store.refs():
        artifact = store.get(ref)
        assert artifact == api.RunArtifact.from_record(store.get_record(ref))
    print("every stored record reconstructs via from_record: OK")

    # 3. Replay: same code, same spec => zero drift (strict tolerances).
    print("\nreplaying every record with --strict semantics:")
    for report in api.replay_all(store, strict=True):
        print(report.summary())
        assert report.ok, "unchanged code must replay drift-free"

    # 4. Diff: two different scenarios, compared metric by metric.
    refs = store.refs()
    report = api.diff_refs(refs[0], refs[1], store)
    print(f"\n{report.summary()}")
    print(
        "\n(the drifted metrics above are the two routers' actual "
        "performance difference, not noise: diff is the PR-to-PR "
        "comparison primitive)"
    )


if __name__ == "__main__":
    main()
