#!/usr/bin/env python
"""Cluster serving: four TD-Pipe replicas behind different routers.

Builds a 4-replica TD-Pipe fleet (each replica a 4xL20 node running
Qwen2.5-32B) on one shared simulation clock, drives it with Poisson arrivals
at a high rate, and compares the routing policies on pooled tail latency —
including the phase-aware router, which exploits each replica's temporal
phase and the output-length predictor.

Run:
    PYTHONPATH=src python examples/cluster_serving.py
"""

from repro import ClusterEngine, TDPipeEngine, get_model, make_node
from repro.cluster import ROUTERS
from repro.predictor import train_length_predictor
from repro.workload import (
    build_dataset,
    sample_eval_requests,
    split_round_robin,
    with_poisson_arrivals,
)

NUM_REPLICAS = 4
RATE_RPS = 8.0  # cluster-wide arrival rate (2 req/s per replica)


def main() -> None:
    node = make_node("L20", 4)
    model = get_model("32B")
    print(f"fleet: {NUM_REPLICAS}x {node.name} replicas, {model.name}")

    # Train the shared output-length predictor (used by every TD-Pipe
    # replica's switch policies and by the phase-aware router).
    corpus = build_dataset(total=3000, seed=0)
    predictor = train_length_predictor(corpus.train, corpus.val, seed=0)

    requests = sample_eval_requests(corpus, n=400, seed=0)
    requests = with_poisson_arrivals(requests, RATE_RPS, seed=0)
    shards = split_round_robin(requests, NUM_REPLICAS)
    print(f"workload: {len(requests)} requests at {RATE_RPS} req/s "
          f"({[len(s) for s in shards]} per replica if pre-sharded)")
    print()

    for router in ROUTERS:
        cluster = ClusterEngine(
            [
                lambda sim: TDPipeEngine(node, model, predictor, sim=sim)
                for _ in range(NUM_REPLICAS)
            ],
            router=router,
        )
        result = cluster.run(requests)
        print(result.summary())
        per_replica = ", ".join(
            f"r{i}: {n} reqs / {u * 100:.0f}%"
            for i, (n, u) in enumerate(
                zip(result.requests_per_replica, result.per_replica_utilization)
            )
        )
        print(f"    {per_replica}")
    print()
    print("phase-aware: queue depth plus a bonus for decode-phase replicas —")
    print("feeding them triggers their decode-switch, so newcomers land at the")
    print("head of a fresh prefill phase (see repro/cluster/routing.py).")


if __name__ == "__main__":
    main()
