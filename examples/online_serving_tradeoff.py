#!/usr/bin/env python
"""Online serving: what temporal disaggregation costs in latency.

The paper deliberately scopes TD-Pipe to *offline* inference.  This example
shows why, using the online-arrivals extension: under a Poisson request
stream, TD-Pipe still delivers excellent throughput and utilisation, but its
long batching phases delay first tokens — TTFT is an order of magnitude worse
than the latency-oriented TP baseline.  Throughput-oriented scheduling and
tight TTFT SLOs are genuinely at odds.

Run:
    python examples/online_serving_tradeoff.py [--rate 5.0]
"""

import argparse

from repro import TDPipeEngine, TPSeparateEngine, get_model, make_node
from repro.predictor import train_length_predictor
from repro.workload import build_dataset, sample_eval_requests, with_poisson_arrivals


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=5.0, help="arrival rate (req/s)")
    parser.add_argument("--requests", type=int, default=400)
    args = parser.parse_args()

    node = make_node("L20", 4)
    model = get_model("32B")
    corpus = build_dataset(total=3000, seed=0)
    predictor = train_length_predictor(corpus.train, corpus.val, seed=0)

    base = sample_eval_requests(corpus, n=args.requests, seed=2)
    print(f"Poisson stream: {args.requests} requests at {args.rate} req/s "
          f"on {node.name} + {model.short_name}\n")

    for name, build in (
        ("TP+SB (latency-oriented)", lambda: TPSeparateEngine(node, model)),
        ("TD-Pipe (throughput-oriented)", lambda: TDPipeEngine(node, model, predictor)),
    ):
        stream = with_poisson_arrivals(base, rate_rps=args.rate, seed=3)
        res = build().run(stream)
        assert res.latency is not None
        print(f"{name}")
        print(f"  throughput {res.throughput:8.1f} tok/s | util "
              f"{res.mean_utilization * 100:5.1f}% | switches {res.phase_switches}")
        print(f"  {res.latency.summary()}\n")

    print("Takeaway: TD-Pipe trades time-to-first-token for throughput — the")
    print("right trade for batch APIs and RLHF rollouts, the wrong one for chat.")


if __name__ == "__main__":
    main()
