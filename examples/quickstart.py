#!/usr/bin/env python
"""Quickstart: run TD-Pipe on a synthetic ShareGPT-like workload.

Builds the paper's 4xA100 node, loads the Llama2-70B spec, trains the
output-length predictor on a small corpus, runs TD-Pipe, and prints the
throughput, utilisation and phase structure.

Run:
    python examples/quickstart.py
"""

from repro import TDPipeEngine, get_model, make_node
from repro.predictor import train_length_predictor
from repro.workload import build_dataset, sample_eval_requests


def main() -> None:
    # 1. Hardware and model: the paper's 4xA100 + Llama2-70B combination.
    node = make_node("A100", 4)
    model = get_model("70B")
    print(f"node: {node.name}  model: {model.name} ({model.weight_bytes / 1e9:.0f} GB)")

    # 2. Train the output-length predictor (paper Figure 8 protocol:
    #    60/20/20 split of a historical corpus).
    corpus = build_dataset(total=3000, seed=0)
    predictor = train_length_predictor(corpus.train, corpus.val, seed=0)
    print(f"predictor bin accuracy: {predictor.bin_accuracy(corpus.test):.3f}")

    # 3. Sample an evaluation workload and run TD-Pipe.
    requests = sample_eval_requests(corpus, n=600, seed=0)
    engine = TDPipeEngine(node, model, predictor)
    result = engine.run(requests)

    # 4. Report.
    print()
    print(result.summary())
    print(f"phase switches: {result.phase_switches}")
    for span in result.phase_spans[:8]:
        print(f"  {span.phase:8s} {span.start:8.1f}s -> {span.end:8.1f}s "
              f"({span.duration:6.1f}s)")
    if len(result.phase_spans) > 8:
        print(f"  ... {len(result.phase_spans) - 8} more phases")


if __name__ == "__main__":
    main()
