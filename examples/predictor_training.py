#!/usr/bin/env python
"""Train and evaluate the output-length predictor (paper Figure 8 / 14).

Walks through the paper's predictor protocol end to end: fit percentile bins
on the training output lengths, train the classifier, report per-request bin
accuracy, and reproduce the accumulated-error curve that justifies using the
predictor for memory planning.

Run:
    python examples/predictor_training.py
"""

import numpy as np

from repro.predictor import (
    ConstantPredictor,
    OraclePredictor,
    accumulated_error_curve,
    train_length_predictor,
)
from repro.workload import build_dataset


def main() -> None:
    # Paper protocol: 60/20/20 split of the historical corpus.
    splits = build_dataset(total=8000, seed=0)
    print(f"corpus: {splits.total} requests "
          f"(train {len(splits.train)} / val {len(splits.val)} / test {len(splits.test)})\n")

    predictor = train_length_predictor(splits.train, splits.val, seed=0)

    print("length bins (percentiles of training outputs):")
    for rng, mean in zip(predictor.bins.describe(), predictor.bins.bin_means):
        print(f"  {rng:16s} -> predicted length {mean:7.1f}")
    if predictor.train_stats:
        s = predictor.train_stats
        print(f"\ntraining: {s.epochs_run} epochs, val accuracy {s.best_val_accuracy:.3f}")

    acc = predictor.bin_accuracy(splits.test)
    print(f"test bin accuracy: {acc:.4f} (chance {1 / predictor.bins.n_bins:.2f}; "
          f"paper reports 0.52-0.58)\n")

    print("accumulated relative error of total-length prediction (Figure 14):")
    curve = accumulated_error_curve(predictor, splits.test)
    for g, e in zip(curve.group_sizes, curve.errors):
        bar = "#" * int(e * 200)
        print(f"  groups of {g:4d}: {e * 100:6.2f}%  |{bar}")

    # Why prediction (not reservation) matters: compare total memory-demand
    # estimates of the predictor vs a static P99 reservation.
    test_total = sum(r.output_len for r in splits.test)
    trained_total = predictor.predict_lengths(splits.test).sum()
    p99 = float(np.percentile([r.output_len for r in splits.train], 99))
    static_total = ConstantPredictor(p99).predict_lengths(splits.test).sum()
    oracle_total = OraclePredictor().predict_lengths(splits.test).sum()
    print("\ntotal output-length estimate over the test set:")
    print(f"  truth / oracle : {oracle_total:12.0f} tokens (ratio 1.00)")
    print(f"  trained        : {trained_total:12.0f} tokens (ratio {trained_total / test_total:.2f})")
    print(f"  static P99     : {static_total:12.0f} tokens (ratio {static_total / test_total:.2f}) "
          f"<- would leave most KV memory idle")


if __name__ == "__main__":
    main()
