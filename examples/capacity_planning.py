#!/usr/bin/env python
"""Capacity planning: which layout serves a model best on a given fleet?

A downstream-user utility built on the substrate: for each (GPU, count,
model) combination, report whether the model fits, the KV-token capacity, the
resulting maximum decode concurrency, and a quick TD-Pipe throughput probe.
This reproduces the reasoning behind the paper's node-model pairings
(Section 4.2: "taking the ratio between memory capacity and model size into
consideration").

Run:
    python examples/capacity_planning.py
"""

from repro import TDPipeEngine, get_model, make_node
from repro.kvcache import OutOfMemoryError, kv_token_capacity
from repro.models import pipeline_shards
from repro.predictor import OraclePredictor
from repro.workload import generate_requests

GPUS = ("L20", "A100")
COUNTS = (1, 2, 4)
MODELS = ("13B", "32B", "70B")
#: Average context length assumed for concurrency estimates.
TYPICAL_CONTEXT = 500


def main() -> None:
    probe = generate_requests(200, seed=3)
    print(
        f"{'layout':12s} {'model':5s} {'fits':>5s} {'KV tokens':>10s} "
        f"{'max seqs':>9s} {'probe tok/s':>12s}"
    )
    for gpu_name in GPUS:
        for n in COUNTS:
            node = make_node(gpu_name, n)
            for model_name in MODELS:
                model = get_model(model_name)
                layout = f"{n}x{gpu_name}"
                try:
                    cap = kv_token_capacity(model, node.gpu, pp_degree=n)
                except OutOfMemoryError:
                    print(f"{layout:12s} {model_name:5s} {'no':>5s} {'-':>10s} {'-':>9s} {'-':>12s}")
                    continue
                max_seqs = cap // TYPICAL_CONTEXT
                engine = TDPipeEngine(node, model, OraclePredictor())
                result = engine.run(
                    [
                        type(r)(r.request_id, r.prompt_len, r.output_len, r.features, r.intent)
                        for r in probe
                    ]
                )
                print(
                    f"{layout:12s} {model_name:5s} {'yes':>5s} {cap:10d} "
                    f"{max_seqs:9d} {result.throughput:12.1f}"
                )
    print("\nper-stage weight footprint for the 4-GPU pipeline layouts:")
    for model_name in MODELS:
        model = get_model(model_name)
        shards = pipeline_shards(model, 4)
        sizes = ", ".join(f"{s.weight_bytes_per_gpu / 1e9:.1f}" for s in shards)
        print(f"  {model_name}: [{sizes}] GB per stage")


if __name__ == "__main__":
    main()
