#!/usr/bin/env python
"""Scenario specs: every experiment is a data file.

Loads each JSON spec in ``examples/scenarios/`` — a single-engine run, a
heterogeneous fleet with SLO classes and autoscaling, and a router sweep
grid — scales it down for a quick demonstration, and executes it through the
one declarative front door, :func:`repro.api.run`.  The same files run from
the CLI::

    tdpipe-bench run --spec examples/scenarios/hetero.json --bench-json out.json
    tdpipe-bench run --spec examples/scenarios/sweep_routers.json \\
        --set workload.rate_rps=10

Run:
    PYTHONPATH=src python examples/scenario_specs.py
"""

import dataclasses
import json
from pathlib import Path

from repro import api

SCENARIO_DIR = Path(__file__).parent / "scenarios"

#: Quick-run override applied to every example (full files are bigger).
FAST = {"workload.scale": 0.02}


def main() -> None:
    for path in sorted(SCENARIO_DIR.glob("*.json")):
        spec = api.load_spec(json.loads(path.read_text()))
        print(f"=== {path.name} ===")
        if isinstance(spec, api.SweepSpec):
            spec = dataclasses.replace(spec, base=spec.base.with_overrides(FAST))
            for artifact in api.run_sweep(spec):
                coords = ", ".join(f"{k}={v}" for k, v in artifact.overrides.items())
                print(f"[{coords}]")
                print(artifact.result.summary())
        else:
            artifact = api.run(spec.with_overrides(FAST))
            print(artifact.spec.describe())
            print(artifact.result.summary())
        print()

    # Round-trip provenance: the artifact record embeds the resolved spec,
    # and the embedded spec rebuilds to an identical scenario.
    spec = api.load_spec(json.loads((SCENARIO_DIR / "hetero.json").read_text()))
    artifact = api.run(spec.with_overrides(FAST))
    record = artifact.to_record()
    rebuilt = api.ScenarioSpec.from_dict(record["spec"])
    assert rebuilt == artifact.spec, "embedded spec must round-trip"
    print(f"artifact schema v{record['schema_version']}: embedded spec round-trips")


if __name__ == "__main__":
    main()
