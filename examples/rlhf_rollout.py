#!/usr/bin/env python
"""RLHF rollout stage: TD-Pipe as the generation engine.

The paper's second motivating scenario (Sections 1 and 2.2.1): the rollout
stage of RLHF generates completions for large prompt batches with no latency
constraint.  Rollout workloads differ from chat traffic — prompts come from a
curated pool (narrower length distribution) and sampling runs until EOS with
a hard cap.  This example models that with a custom intent mixture, compares
TD-Pipe against the strongest baseline, and reports tokens/s and the
generated-token yield per GPU-hour that an RLHF pipeline would budget around.

Run:
    python examples/rlhf_rollout.py
"""

from repro import TDPipeEngine, TPSeparateEngine, get_model, make_node
from repro.predictor import train_length_predictor
from repro.workload import IntentProfile, ShareGPTSynthesizer

#: Rollout mixture: moderately long, relatively uniform completions (policy
#: samples until EOS, capped), unlike chat's extreme short/long mix.
ROLLOUT_INTENTS = (
    IntentProfile("rollout-short", weight=0.3, output_median=180.0, output_sigma=0.30, feature_loc=-1.0),
    IntentProfile("rollout-mid", weight=0.5, output_median=350.0, output_sigma=0.30, feature_loc=0.0),
    IntentProfile("rollout-long", weight=0.2, output_median=600.0, output_sigma=0.25, feature_loc=1.0),
)


def main() -> None:
    node = make_node("A100", 4)
    model = get_model("32B")

    synth = ShareGPTSynthesizer(
        seed=7,
        intents=ROLLOUT_INTENTS,
        input_median=300.0,  # curated prompts, fairly uniform
        input_sigma=0.4,
        max_output_len=1024,
    )
    # Historical rollouts train the length predictor; fresh prompts are served.
    history = synth.generate(2400)
    train, val = history[:1800], history[1800:]
    predictor = train_length_predictor(train, val, seed=0)
    requests = synth.generate(800, id_offset=10_000)

    print(f"rollout batch: {len(requests)} prompts on {node.name} + {model.short_name}")
    print(f"predictor accuracy on rollout mixture: {predictor.bin_accuracy(val):.3f}\n")

    for name, build in (
        ("TP+SB", lambda: TPSeparateEngine(node, model)),
        ("TD-Pipe", lambda: TDPipeEngine(node, model, predictor)),
    ):
        fresh = synth.generate(800, id_offset=10_000)
        res = build().run(fresh)
        gpu_hours = res.makespan * node.num_gpus / 3600.0
        yield_per_gpu_hour = res.total_output_tokens / gpu_hours
        print(res.summary())
        print(f"  rollout yield: {yield_per_gpu_hour / 1e6:.2f} M generated tokens / GPU-hour\n")


if __name__ == "__main__":
    main()
