#!/usr/bin/env python
"""Workload regimes: declarative traffic timelines, end to end.

A ``RegimeSpec`` is an ordered list of named segments — each with a
duration, an arrival shape (``constant`` / ``ramp`` / ``flash``), an
optional SLO mix, and an optional multi-turn session model.  The evaluator
compiles it into a deterministic, seed-stable arrival schedule, and every
cluster run driven by one reports *per-segment* metric slices alongside the
whole-run numbers.

This walkthrough:

1. **describe + compile** — build the ``diurnal`` preset, inspect its
   timeline, and compile it to a concrete schedule (the CLI equivalent is
   ``tdpipe-bench workload preview diurnal``).
2. **record** — run the registered ``cluster-regimes`` experiment (diurnal
   vs flash-crowd through the same reactive autoscaler) into a
   content-addressed :class:`repro.api.ArtifactStore`.
3. **replay --strict** — regime schedules are deterministic, so unchanged
   code replays every record with zero drift.
4. **diff** — compare the two regimes ref-to-ref: same average load,
   differently shaped, measurably different fleet trajectories.

The same workflow from the CLI::

    tdpipe-bench workload preview diurnal
    tdpipe-bench record cluster-regimes --store tdpipe-store --jobs 2
    tdpipe-bench replay --store tdpipe-store --strict
    tdpipe-bench diff <diurnal-ref> <flash-ref> --store tdpipe-store

Run:
    PYTHONPATH=src python examples/regime_traffic.py
"""

import tempfile
from pathlib import Path

from repro import api
from repro.workload.regimes import compile_regime, get_regime

#: Quick-run sizes (CI-smoke friendly: ~100 s timelines, small requests).
SCALE = 0.02
DURATION_SCALE = 0.3
REGIMES = ("diurnal", "flash-crowd")


def main() -> None:
    # 1. Describe + compile: the preset is data, the schedule is derived.
    regime = get_regime("diurnal")
    print(regime.describe())
    compiled = compile_regime(regime, seed=0)
    for seg in compiled.segments:
        print(
            f"  {seg.name:<14} [{seg.start_s:7.1f}s, {seg.end_s:7.1f}s)  "
            f"{seg.base_arrivals:4d} arrivals "
            f"({seg.expected_base_arrivals:6.1f} expected), "
            f"{seg.sessions:3d} sessions"
        )
    print(
        f"  total: {compiled.num_requests} requests "
        f"({compiled.num_sessions} multi-turn sessions)\n"
    )

    store = api.ArtifactStore(Path(tempfile.mkdtemp(prefix="tdpipe-store-")))

    # 2. Record: one content-addressed record per regime, identical
    # fleet/engine/control — only workload.regime is swept.
    sweep = api.get_scenario(
        "cluster-regimes",
        regimes=REGIMES,
        duration_scale=DURATION_SCALE,
        scale_factor=SCALE,
    )
    artifacts = api.run_sweep(sweep, store=store)
    print(f"recorded {len(store)} regimes -> {store.root}")
    for name, artifact in zip(REGIMES, artifacts):
        result = artifact.result
        print(f"  {name}: fleet timeline {result.fleet_timeline}")
        for stats in result.segments.values():
            print(f"    {stats.summary()}")

    # 3. Replay: deterministic schedule + deterministic simulator => the
    # strict gate passes with zero drift on unchanged code.
    print("\nreplaying every record with --strict semantics:")
    for report in api.replay_all(store, strict=True):
        print(report.summary())
        assert report.ok, "unchanged code must replay drift-free"

    # 4. Diff: the two regimes, metric by metric.  Same mean load, but the
    # flash crowd gives the reactive autoscaler seconds of warning instead
    # of minutes — the drift report below is that difference, quantified.
    refs = store.refs()
    report = api.diff_refs(refs[0], refs[1], store)
    print(f"\n{report.summary()}")


if __name__ == "__main__":
    main()
