"""Cluster control plane demo: heterogeneous fleet, SLO classes, autoscaling.

Runs three fleet configurations on the same ShareGPT-like workload:

1. a mixed L20/A100 fleet under raw-count JSQ (the naive baseline — it
   treats an L20 queue and an A100 queue of equal length as equally loaded);
2. the same fleet under capacity-normalized JSQ and the deadline-aware
   router, with a 70/30 interactive/batch SLO mix;
3. the normalized fleet again with the autoscaler attached: replicas start
   small, grow on queue pressure, and drain when it subsides.

Usage::

    PYTHONPATH=src python examples/control_plane.py
"""

from repro.cluster import Autoscaler
from repro.experiments import run_cluster
from repro.experiments.common import default_scale

SCALE = default_scale(factor=0.05, seed=0)
FLEET = "l20:2,a100:2"
RATE = 14.0
MIX = "interactive:0.7,batch:0.3"


def show(title: str, result) -> None:
    print(f"--- {title}")
    print(result.summary())
    for stats in result.slo_attainment.values():
        print(f"    SLO {stats.summary()}")
    print()


def main() -> None:
    print(f"fleet {FLEET}, {RATE:.0f} req/s Poisson, SLO mix {MIX}\n")

    for router in ("jsq-raw", "jsq", "deadline"):
        result = run_cluster(
            "TD-Pipe",
            model="13B",
            router=router,
            rate_rps=RATE,
            scale=SCALE,
            fleet=FLEET,
            slo_mix=MIX,
        )
        show(f"router={router}", result)

    result = run_cluster(
        "TD-Pipe",
        model="13B",
        router="jsq",
        rate_rps=RATE,
        scale=SCALE,
        fleet=FLEET,
        slo_mix=MIX,
        autoscaler=Autoscaler(min_replicas=1),
    )
    show("router=jsq + autoscaler", result)
    timeline = ", ".join(f"{t:.1f}s->{n}" for t, n in result.fleet_timeline)
    print(f"fleet-size timeline: {timeline}")
    print(
        "replica active seconds:",
        [f"{s:.1f}" for s in result.replica_active_time],
        f"(total {result.replica_seconds:.1f} vs "
        f"{result.makespan * result.num_replicas:.1f} fixed)",
    )


if __name__ == "__main__":
    main()
