#!/usr/bin/env python
"""Offline batch-API scenario: compare all five systems on one node.

The paper's motivating use case (Section 1): batch APIs process large request
backlogs with no latency SLO — throughput is everything.  This example runs
the same backlog through TP+SB, TP+HB, PP+SB, PP+HB and TD-Pipe on a 4-GPU
PCIe node and prints a comparison table plus per-GPU utilisation.

Run:
    python examples/batch_api_throughput.py [--gpu L20|A100] [--model 13B|32B|70B]
"""

import argparse

from repro import (
    PPHybridEngine,
    PPSeparateEngine,
    TDPipeEngine,
    TPHybridEngine,
    TPSeparateEngine,
    get_model,
    make_node,
)
from repro.kvcache import OutOfMemoryError
from repro.predictor import train_length_predictor
from repro.workload import build_dataset, sample_eval_requests


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gpu", default="L20", choices=["L20", "A100"])
    parser.add_argument("--model", default="32B", choices=["13B", "32B", "70B"])
    parser.add_argument("--num-gpus", type=int, default=4)
    parser.add_argument("--requests", type=int, default=800)
    args = parser.parse_args()

    node = make_node(args.gpu, args.num_gpus)
    model = get_model(args.model)
    corpus = build_dataset(total=3000, seed=0)
    predictor = train_length_predictor(corpus.train, corpus.val, seed=0)

    print(f"backlog: {args.requests} requests on {node.name} + {model.short_name}\n")
    rows = []
    for name, build in (
        ("TP+SB", lambda: TPSeparateEngine(node, model)),
        ("TP+HB", lambda: TPHybridEngine(node, model)),
        ("PP+SB", lambda: PPSeparateEngine(node, model)),
        ("PP+HB", lambda: PPHybridEngine(node, model)),
        ("TD-Pipe", lambda: TDPipeEngine(node, model, predictor)),
    ):
        requests = sample_eval_requests(corpus, n=args.requests, seed=1)
        try:
            res = build().run(requests)
            rows.append((name, res))
        except OutOfMemoryError as e:
            print(f"{name:8s} OOM: {e}")

    print(f"{'system':8s} {'tokens/s':>10s} {'makespan':>10s} {'util':>7s} "
          f"{'recompute':>10s}")
    best = max(r.throughput for _, r in rows)
    for name, res in rows:
        marker = "  <-- best" if res.throughput == best else ""
        print(
            f"{name:8s} {res.throughput:10.1f} {res.makespan:9.1f}s "
            f"{res.mean_utilization * 100:6.1f}% {res.recomputations:10d}{marker}"
        )


if __name__ == "__main__":
    main()
